// Tests for the simulated runtime: profiles, cost model, fault model, and
// perf-counter synthesis.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/cost_model.hpp"
#include "runtime/fault_model.hpp"
#include "runtime/impl_profile.hpp"
#include "runtime/perf_counters.hpp"
#include "support/error.hpp"

namespace ompfuzz::rt {
namespace {

interp::EventCounts basic_events() {
  interp::EventCounts ev;
  ev.fp_add_sub = 100000;
  ev.fp_mul = 50000;
  ev.fp_div = 1000;
  ev.scalar_loads = 200000;
  ev.scalar_stores = 80000;
  ev.branches = 60000;
  return ev;
}

ast::ProgramFeatures plain_features() {
  ast::ProgramFeatures f;
  f.num_double_vars = 3;
  return f;
}

// ------------------------------------------------------------ profiles -----

TEST(Profiles, LookupByAliases) {
  EXPECT_EQ(profile_by_name("gcc").name, "gcc");
  EXPECT_EQ(profile_by_name("G++").name, "gcc");
  EXPECT_EQ(profile_by_name("libgomp").name, "gcc");
  EXPECT_EQ(profile_by_name("LLVM").name, "clang");
  EXPECT_EQ(profile_by_name("libomp").name, "clang");
  EXPECT_EQ(profile_by_name("oneapi").name, "intel");
  EXPECT_EQ(profile_by_name("libiomp5").name, "intel");
  EXPECT_THROW((void)profile_by_name("msvc"), Error);
}

TEST(Profiles, VendorCharacteristics) {
  const auto gcc = gcc_profile();
  const auto clang = clang_profile();
  const auto intel = intel_profile();
  // The documented mechanisms behind the paper's case studies:
  EXPECT_TRUE(gcc.fp.flush_subnormals);        // numeric divergence source
  EXPECT_FALSE(clang.fp.flush_subnormals);
  EXPECT_GT(clang.cost.relaunch_multiplier, 5.0);  // Case Study 2
  EXPECT_EQ(intel.critical_lock, LockAlgorithm::Queuing);  // Case Study 3
  EXPECT_EQ(gcc.critical_lock, LockAlgorithm::FutexMutex);
  EXPECT_GT(gcc.wait.active_fraction, intel.wait.active_fraction);  // spin vs sleep
  EXPECT_GT(clang.wait.pages_per_region, 10.0);  // per-launch allocation
  EXPECT_GT(intel.fault.hang_probability, 0.0);
  EXPECT_GT(gcc.fault.crash_probability, 0.0);
  EXPECT_EQ(clang.fault.hang_probability, 0.0);
}

// ------------------------------------------------------------ cost model ---

TEST(CostModel, ComputeScalesWithEvents) {
  const auto prof = intel_profile();
  auto ev = basic_events();
  const auto t1 = simulate_time(ev, plain_features(), 32, prof, 1);
  ev.fp_add_sub *= 10;
  ev.scalar_loads *= 10;
  const auto t2 = simulate_time(ev, plain_features(), 32, prof, 1);
  EXPECT_GT(t2.compute_ns, t1.compute_ns * 3.0);
}

TEST(CostModel, RelaunchPenaltyKicksInAboveThreshold) {
  const auto prof = clang_profile();
  interp::EventCounts few = basic_events();
  few.parallel_regions = 4;
  interp::EventCounts many = basic_events();
  many.parallel_regions = 400;
  const auto t_few = simulate_time(few, plain_features(), 32, prof, 1);
  const auto t_many = simulate_time(many, plain_features(), 32, prof, 1);
  // Beyond the threshold each launch costs ~relaunch_multiplier x base, so
  // 100x the regions must cost far more than 100x the launch time.
  EXPECT_GT(t_many.launch_ns, t_few.launch_ns * 300.0);
}

TEST(CostModel, ClangRelaunchDwarfsOthers) {
  interp::EventCounts ev = basic_events();
  ev.parallel_regions = 200;
  ev.thread_starts = 200 * 32;
  const auto gcc_t = simulate_time(ev, plain_features(), 32, gcc_profile(), 1);
  const auto clang_t = simulate_time(ev, plain_features(), 32, clang_profile(), 1);
  const auto intel_t = simulate_time(ev, plain_features(), 32, intel_profile(), 1);
  EXPECT_GT(clang_t.launch_ns, 3.0 * gcc_t.launch_ns);
  EXPECT_GT(clang_t.launch_ns, 3.0 * intel_t.launch_ns);
}

TEST(CostModel, CriticalContentionMakesGccFastest) {
  interp::EventCounts ev = basic_events();
  ev.critical_entries = 2000;
  ev.critical_stmts = 4000;
  const double gcc_ns =
      simulate_time(ev, plain_features(), 32, gcc_profile(), 1).critical_ns;
  const double clang_ns =
      simulate_time(ev, plain_features(), 32, clang_profile(), 1).critical_ns;
  const double intel_ns =
      simulate_time(ev, plain_features(), 32, intel_profile(), 1).critical_ns;
  // GCC's futex mutex is the cheap one; Intel and Clang are comparable
  // (within the alpha=0.2 band) so they form the baseline pair.
  EXPECT_LT(gcc_ns * 2.0, intel_ns);
  EXPECT_LT(std::fabs(intel_ns - clang_ns) / std::min(intel_ns, clang_ns), 0.2);
}

TEST(CostModel, SubnormalAssistsCharged) {
  const auto prof = clang_profile();
  auto ev = basic_events();
  const auto base = simulate_time(ev, plain_features(), 32, prof, 1);
  ev.subnormal_fp_ops = 100000;
  const auto assisted = simulate_time(ev, plain_features(), 32, prof, 1);
  EXPECT_GT(assisted.compute_ns, base.compute_ns + 1e6);
}

TEST(CostModel, MixedWidthPenaltyOnlyForMixedPrograms) {
  const auto prof = gcc_profile();
  auto features = plain_features();
  const auto pure = simulate_time(basic_events(), features, 32, prof, 1);
  features.num_float_vars = 2;  // now mixed float + double
  const auto mixed = simulate_time(basic_events(), features, 32, prof, 1);
  EXPECT_GT(mixed.compute_ns, pure.compute_ns);
}

TEST(CostModel, NoiseIsDeterministicAndBounded) {
  const auto prof = gcc_profile();
  const auto ev = basic_events();
  const auto a = simulate_time(ev, plain_features(), 32, prof, 42);
  const auto b = simulate_time(ev, plain_features(), 32, prof, 42);
  EXPECT_DOUBLE_EQ(a.total_us(), b.total_us());
  const auto c = simulate_time(ev, plain_features(), 32, prof, 43);
  EXPECT_NE(a.total_us(), c.total_us());
  EXPECT_GE(a.noise_factor, 1.0 - prof.cost.noise_fraction);
  EXPECT_LE(a.noise_factor, 1.0 + prof.cost.noise_fraction);
}

TEST(CostModel, TimeScaleAppliesToTotalOnly) {
  auto prof = intel_profile();
  const auto ev = basic_events();
  const auto t1 = simulate_time(ev, plain_features(), 32, prof, 1);
  prof.cost.time_scale *= 2.0;
  const auto t2 = simulate_time(ev, plain_features(), 32, prof, 1);
  EXPECT_DOUBLE_EQ(t2.compute_ns, t1.compute_ns);          // raw parts unscaled
  EXPECT_NEAR(t2.total_ns(), 2.0 * t1.total_ns(), 1e-6);   // total doubles
}

TEST(CostModel, HashUniformInUnitInterval) {
  for (std::uint64_t h = 0; h < 1000; ++h) {
    const double u = hash_uniform(h);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ------------------------------------------------------------ fault model --

TEST(FaultModel, HangRequiresTriggerPattern) {
  const auto intel = intel_profile();
  ast::ProgramFeatures no_trigger;
  for (std::uint64_t h = 0; h < 3000; ++h) {
    EXPECT_EQ(decide_fault(no_trigger, 32, intel, h).kind, FaultKind::None);
  }
}

TEST(FaultModel, HangFiresAtDocumentedRate) {
  const auto intel = intel_profile();
  ast::ProgramFeatures trigger;
  trigger.has_critical_in_parallel_loop = true;
  int hangs = 0;
  constexpr int n = 200000;
  for (std::uint64_t h = 0; h < n; ++h) {
    hangs += (decide_fault(trigger, 32, intel, h).kind == FaultKind::Hang);
  }
  EXPECT_NEAR(static_cast<double>(hangs) / n, intel.fault.hang_probability,
              intel.fault.hang_probability * 0.2);
}

TEST(FaultModel, HangNeedsWideTeam) {
  const auto intel = intel_profile();
  ast::ProgramFeatures trigger;
  trigger.has_critical_in_parallel_loop = true;
  for (std::uint64_t h = 0; h < 3000; ++h) {
    EXPECT_EQ(decide_fault(trigger, 2, intel, h).kind, FaultKind::None);
  }
}

TEST(FaultModel, CrashNeedsDepthAndMath) {
  const auto gcc = gcc_profile();
  ast::ProgramFeatures shallow;
  shallow.max_nesting_depth = 2;
  shallow.num_math_calls = 5;
  ast::ProgramFeatures no_math;
  no_math.max_nesting_depth = 4;
  for (std::uint64_t h = 0; h < 2000; ++h) {
    EXPECT_EQ(decide_fault(shallow, 32, gcc, h).kind, FaultKind::None);
    EXPECT_EQ(decide_fault(no_math, 32, gcc, h).kind, FaultKind::None);
  }
}

TEST(FaultModel, DecisionsAreDeterministic) {
  const auto gcc = gcc_profile();
  ast::ProgramFeatures trigger;
  trigger.max_nesting_depth = 3;
  trigger.num_math_calls = 1;
  for (std::uint64_t h = 0; h < 100; ++h) {
    EXPECT_EQ(decide_fault(trigger, 32, gcc, h).kind,
              decide_fault(trigger, 32, gcc, h).kind);
  }
}

TEST(FaultModel, CleanProfilesNeverFault) {
  const auto clang = clang_profile();
  ast::ProgramFeatures trigger;
  trigger.has_critical_in_parallel_loop = true;
  trigger.max_nesting_depth = 5;
  trigger.num_math_calls = 10;
  for (std::uint64_t h = 0; h < 3000; ++h) {
    EXPECT_EQ(decide_fault(trigger, 32, clang, h).kind, FaultKind::None);
  }
}

// ------------------------------------------------------------ counters -----

TEST(Counters, ClangRegionStormInflatesSwitchesAndFaults) {
  // The Table III relationships: Clang >> Intel in context switches and page
  // faults for a region-relaunch test.
  interp::EventCounts ev = basic_events();
  ev.parallel_regions = 1000;
  ev.thread_starts = 1000 * 32;
  const auto clang_t = simulate_time(ev, plain_features(), 32, clang_profile(), 7);
  const auto intel_t = simulate_time(ev, plain_features(), 32, intel_profile(), 7);
  const auto clang_pc = synthesize_counters(ev, clang_t, 32, clang_profile(), 7);
  const auto intel_pc = synthesize_counters(ev, intel_t, 32, intel_profile(), 7);
  EXPECT_GT(clang_pc.context_switches, 20 * intel_pc.context_switches);
  EXPECT_GT(clang_pc.page_faults, 20 * intel_pc.page_faults);
  EXPECT_GT(clang_pc.instructions, 2 * intel_pc.instructions);
  EXPECT_GT(clang_pc.cycles, 2 * intel_pc.cycles);
}

TEST(Counters, SpinningRuntimeBurnsCyclesWhileSleepingOneSwitches) {
  // The Table II inversion: GCC (spin) accumulates more cycles than Intel
  // (sleep) on a contended-critical test even while being faster overall.
  interp::EventCounts ev = basic_events();
  ev.critical_entries = 5000;
  ev.critical_stmts = 10000;
  ev.parallel_regions = 1;
  ev.thread_starts = 32;
  const auto gcc_t = simulate_time(ev, plain_features(), 32, gcc_profile(), 9);
  const auto intel_t = simulate_time(ev, plain_features(), 32, intel_profile(), 9);
  const auto gcc_pc = synthesize_counters(ev, gcc_t, 32, gcc_profile(), 9);
  const auto intel_pc = synthesize_counters(ev, intel_t, 32, intel_profile(), 9);
  EXPECT_LT(gcc_t.total_us(), intel_t.total_us());            // gcc faster
  EXPECT_GT(intel_pc.context_switches, gcc_pc.context_switches);  // intel sleeps
  EXPECT_GT(intel_pc.cpu_migrations, gcc_pc.cpu_migrations);
}

TEST(Counters, DeterministicPerSeed) {
  const auto prof = gcc_profile();
  const auto ev = basic_events();
  const auto t = simulate_time(ev, plain_features(), 32, prof, 5);
  const auto a = synthesize_counters(ev, t, 32, prof, 5);
  const auto b = synthesize_counters(ev, t, 32, prof, 5);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

TEST(Counters, InstructionsTrackUserWork) {
  const auto prof = intel_profile();
  auto ev = basic_events();
  const auto t = simulate_time(ev, plain_features(), 32, prof, 3);
  const auto small = synthesize_counters(ev, t, 32, prof, 3);
  ev.fp_add_sub *= 20;
  ev.scalar_loads *= 20;
  const auto t2 = simulate_time(ev, plain_features(), 32, prof, 3);
  const auto big = synthesize_counters(ev, t2, 32, prof, 3);
  EXPECT_GT(big.instructions, small.instructions * 5);
  EXPECT_GT(big.branches, small.branches / 2);  // branches unchanged-ish
}

}  // namespace
}  // namespace ompfuzz::rt
