// Tests for the value-range abstract interpretation (analysis/value_range):
//
//   * golden unit tests for the interval lattice and its abstract transfer
//     functions — widening convergence, div/mod guards, saturation at the
//     interpreter's 2^53 exact-double boundary, thread-id and induction
//     bounds;
//   * golden safety-verdict tests on hand-built programs (out-of-bounds
//     subscripts, mod-by-zero, team-size overrides);
//   * the soundness differential sweep (CI: --gtest_filter=*SoundnessSweep*):
//     2,000+ fixed-seed drafts — default grammar, every feature gate, and
//     the rangeidx streams — each executed under the interpreter's value
//     trace. Any observed value outside its predicted interval, or an
//     interpreter error on a Safe-verdict program, is unsoundness and fails
//     hard;
//   * the interval-precision gate: on rangeidx streams the affine-only
//     baseline must filter strictly more drafts than the interval-enabled
//     analyzer, and never the other way around.
#include <gtest/gtest.h>

#include <string>

#include "analysis/access_set.hpp"
#include "analysis/race_analyzer.hpp"
#include "analysis/value_range.hpp"
#include "core/generator.hpp"
#include "fp/input_gen.hpp"
#include "interp/interp.hpp"
#include "support/config.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ompfuzz::analysis {
namespace {

using ast::AssignOp;
using ast::BinOp;
using ast::Block;
using ast::Expr;
using ast::FpWidth;
using ast::LValue;
using ast::OmpClauses;
using ast::Program;
using ast::Stmt;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

// ---------------------------------------------------------------------------
// Interval lattice
// ---------------------------------------------------------------------------

TEST(Interval, LatticeBasics) {
  EXPECT_TRUE(Interval::bottom().empty());
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_FALSE(Interval::exact(3).empty());
  EXPECT_TRUE(Interval::exact(3).contains(3));
  EXPECT_FALSE(Interval::exact(3).contains(4));
  EXPECT_TRUE(Interval::of(1, 5).subset_of(Interval::of(0, 5)));
  EXPECT_FALSE(Interval::of(1, 6).subset_of(Interval::of(0, 5)));
  // Bottom is a subset of everything and intersects nothing.
  EXPECT_TRUE(Interval::bottom().subset_of(Interval::exact(0)));
  EXPECT_FALSE(Interval::bottom().intersects(Interval::top()));
  EXPECT_TRUE(Interval::of(0, 3).intersects(Interval::of(3, 7)));
  EXPECT_FALSE(Interval::of(0, 3).intersects(Interval::of(4, 7)));

  EXPECT_EQ(join(Interval::bottom(), Interval::of(2, 4)), Interval::of(2, 4));
  EXPECT_EQ(join(Interval::of(0, 1), Interval::of(5, 9)), Interval::of(0, 9));
  EXPECT_EQ(to_string(Interval::of(0, 9)), "[0, 9]");
  EXPECT_EQ(to_string(Interval::top()), "[-inf, +inf]");
  EXPECT_EQ(to_string(Interval::bottom()), "[]");
}

TEST(Interval, WideningConverges) {
  // A stable bound stays; a moved bound jumps straight to infinity.
  EXPECT_EQ(widen(Interval::of(0, 5), Interval::of(0, 5)), Interval::of(0, 5));
  EXPECT_EQ(widen(Interval::of(0, 5), Interval::of(0, 6)),
            Interval::of(0, Interval::kPosInf));
  EXPECT_EQ(widen(Interval::of(0, 5), Interval::of(-1, 5)),
            Interval::of(Interval::kNegInf, 5));

  // The fixpoint loop of an incrementing accumulator: joins grow the upper
  // bound forever, widening must terminate it in a bounded number of steps.
  Interval state = Interval::exact(0);
  int steps = 0;
  for (;; ++steps) {
    ASSERT_LT(steps, 8) << "widening failed to converge";
    const Interval next = join(state, interval_add(state, Interval::exact(1)));
    if (next == state) break;
    state = steps >= 2 ? widen(state, next) : next;
  }
  EXPECT_EQ(state, Interval::of(0, Interval::kPosInf));
}

TEST(Interval, ArithmeticGoldens) {
  EXPECT_EQ(interval_add(Interval::of(1, 2), Interval::of(10, 20)),
            Interval::of(11, 22));
  EXPECT_EQ(interval_sub(Interval::of(1, 2), Interval::of(10, 20)),
            Interval::of(-19, -8));
  EXPECT_EQ(interval_mul(Interval::of(-3, 2), Interval::of(4, 5)),
            Interval::of(-15, 10));
  // Infinity times zero is zero under the corner convention: top * {0} = {0}.
  EXPECT_EQ(interval_mul(Interval::top(), Interval::exact(0)),
            Interval::exact(0));
  // Bottom is absorbing.
  EXPECT_TRUE(interval_add(Interval::bottom(), Interval::top()).empty());
  EXPECT_TRUE(interval_mul(Interval::bottom(), Interval::exact(2)).empty());
  // Infinite operands propagate infinity on the matching side only.
  EXPECT_EQ(interval_add(Interval::of(0, Interval::kPosInf), Interval::exact(1)),
            Interval::of(1, Interval::kPosInf));
}

TEST(Interval, ArithmeticSaturatesPastExactDouble) {
  // The interpreter's integer add/sub/mul run through doubles, exact only to
  // 2^53: any finite result past that must widen to infinity, never report a
  // precise (and wrong) int64 bound.
  const Interval big = Interval::exact(Interval::kExactDouble);
  EXPECT_EQ(interval_add(big, Interval::exact(1)).hi, Interval::kPosInf);
  EXPECT_EQ(interval_sub(Interval::exact(-Interval::kExactDouble),
                         Interval::exact(1))
                .lo,
            Interval::kNegInf);
  EXPECT_EQ(interval_mul(big, Interval::exact(2)).hi, Interval::kPosInf);
  // At the boundary itself the bound is still exact.
  EXPECT_EQ(interval_add(Interval::exact(Interval::kExactDouble - 1),
                         Interval::exact(1)),
            Interval::exact(Interval::kExactDouble));
}

TEST(Interval, ModGuards) {
  // Divisor exactly {0}: no value is ever produced (the caller flags the
  // error; the interval itself is bottom).
  EXPECT_TRUE(interval_mod(Interval::of(0, 9), Interval::exact(0)).empty());
  // Identity: a % c == a when 0 <= a < c.
  EXPECT_EQ(interval_mod(Interval::of(0, 5), Interval::exact(8)),
            Interval::of(0, 5));
  // General positive case: result in [0, c-1].
  EXPECT_EQ(interval_mod(Interval::of(0, 100), Interval::exact(8)),
            Interval::of(0, 7));
  // C++ % follows the dividend's sign.
  EXPECT_EQ(interval_mod(Interval::of(-10, 10), Interval::exact(4)),
            Interval::of(-3, 3));
  // Divisor straddling zero still bounds by the largest magnitude.
  EXPECT_EQ(interval_mod(Interval::of(-10, 10), Interval::of(-3, 3)),
            Interval::of(-2, 2));
  // Unbounded divisor: only the dividend constrains the result.
  EXPECT_EQ(interval_mod(Interval::of(5, 10), Interval::top()),
            Interval::of(0, 10));
}

TEST(Interval, EvalExprGoldens) {
  std::map<VarId, Interval> env;
  env[7] = Interval::of(2, 4);

  EXPECT_EQ(eval_expr_interval(*Expr::int_const(42), env, 0),
            Interval::exact(42));
  // Thread id: [0, T-1] in a team, exactly 0 serially.
  EXPECT_EQ(eval_expr_interval(*Expr::thread_id(), env, 4), Interval::of(0, 3));
  EXPECT_EQ(eval_expr_interval(*Expr::thread_id(), env, 0), Interval::exact(0));
  // Env lookup; unknown variables are top.
  EXPECT_EQ(eval_expr_interval(*Expr::var(7), env, 0), Interval::of(2, 4));
  EXPECT_TRUE(eval_expr_interval(*Expr::var(9), env, 0).is_top());
  // Integer division is floating-point in the interpreter: no bound.
  EXPECT_TRUE(eval_expr_interval(
                  *Expr::binary(BinOp::Div, Expr::int_const(8), Expr::int_const(2)),
                  env, 0)
                  .is_top());
  // Composite: (var_7 * 2 + tid) with 4 threads = [4, 11].
  EXPECT_EQ(eval_expr_interval(
                *Expr::binary(BinOp::Add,
                              Expr::binary(BinOp::Mul, Expr::var(7),
                                           Expr::int_const(2)),
                              Expr::thread_id()),
                env, 4),
            Interval::of(4, 11));
}

// ---------------------------------------------------------------------------
// predict_ranges on hand-built programs
// ---------------------------------------------------------------------------

struct ProgFixture {
  Program prog;
  VarId arr, x, i, n;

  explicit ProgFixture(int array_size = 4) {
    arr = prog.add_var(
        {"arr_1", VarKind::FpArray, VarRole::Param, FpWidth::F64, array_size});
    x = prog.add_var({"i_9", VarKind::IntScalar, VarRole::Temp, FpWidth::F64, 0});
    i = prog.add_var(
        {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
    n = prog.add_var(
        {"n_1", VarKind::IntScalar, VarRole::Param, FpWidth::F64, 0});
    prog.add_param(arr);
    prog.add_param(n);
  }

  fp::InputSet input_with_n(std::int64_t v) const {
    fp::InputSet in;
    in.values.resize(2);
    in.values[1].int_value = v;
    return in;
  }
};

TEST(Predict, LoopInductionAndWidening) {
  ProgFixture f;
  // for (i = 0; i < 10; ++i) x = x + 1;
  Block body;
  body.stmts.push_back(Stmt::assign(
      LValue{f.x, nullptr}, AssignOp::Assign,
      Expr::binary(BinOp::Add, Expr::var(f.x), Expr::int_const(1))));
  f.prog.body().stmts.push_back(Stmt::for_loop(
      f.i, Expr::int_const(10), std::move(body), /*omp_for=*/false));

  const RangePrediction pred = predict_ranges(f.prog);
  EXPECT_EQ(pred.safety, SafetyVerdict::Safe);
  // The induction variable is bounded exactly by the constant trip count.
  EXPECT_EQ(pred.scalars[f.i], Interval::of(0, 9));
  // The accumulator's upper bound widens to infinity (the abstract loop
  // cannot count iterations); the lower bound is the first bound value, 1 —
  // the prediction covers values *bound* to x, and the initial 0 is a
  // default, never an assignment.
  EXPECT_EQ(pred.scalars[f.x], Interval::of(1, Interval::kPosInf));
}

TEST(Predict, OutOfBoundsVerdicts) {
  {
    // arr[7] on a 4-element array, straight-line: definitely out of bounds.
    ProgFixture f;
    f.prog.body().stmts.push_back(Stmt::assign(
        LValue{f.arr, Expr::int_const(7)}, AssignOp::Assign,
        Expr::fp_const(1.0)));
    const RangePrediction pred = predict_ranges(f.prog);
    EXPECT_EQ(pred.safety, SafetyVerdict::DefiniteError);
    EXPECT_EQ(pred.subscripts[f.arr], Interval::exact(7));
    EXPECT_NE(pred.safety_detail.find("out of bounds"), std::string::npos);
  }
  {
    // arr[i] under a 10-trip loop: [0, 9] straddles the 4-element bound.
    ProgFixture f;
    Block body;
    body.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::var(f.i)},
                                      AssignOp::Assign, Expr::fp_const(1.0)));
    f.prog.body().stmts.push_back(Stmt::for_loop(
        f.i, Expr::int_const(10), std::move(body), /*omp_for=*/false));
    const RangePrediction pred = predict_ranges(f.prog);
    EXPECT_EQ(pred.safety, SafetyVerdict::PossibleError);
    EXPECT_EQ(pred.subscripts[f.arr], Interval::of(0, 9));
  }
  {
    // Same loop over a 16-element array: provably in bounds.
    ProgFixture f(/*array_size=*/16);
    Block body;
    body.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::var(f.i)},
                                      AssignOp::Assign, Expr::fp_const(1.0)));
    f.prog.body().stmts.push_back(Stmt::for_loop(
        f.i, Expr::int_const(10), std::move(body), /*omp_for=*/false));
    EXPECT_EQ(predict_ranges(f.prog).safety, SafetyVerdict::Safe);
  }
}

TEST(Predict, ModByZeroVerdicts) {
  // x = 5 % n: definite, possible, or safe depending on what is known of n.
  const auto build = [](ProgFixture& f) {
    f.prog.body().stmts.push_back(Stmt::assign(
        LValue{f.x, nullptr}, AssignOp::Assign,
        Expr::binary(BinOp::Mod, Expr::int_const(5), Expr::var(f.n))));
  };
  ProgFixture f;
  build(f);
  // No input: n is any integer, zero included.
  EXPECT_EQ(predict_ranges(f.prog).safety, SafetyVerdict::PossibleError);
  // Bound inputs: exact divisor decides the verdict.
  EXPECT_EQ(check_candidate_safety(f.prog, f.input_with_n(3)).verdict,
            SafetyVerdict::Safe);
  EXPECT_EQ(check_candidate_safety(f.prog, f.input_with_n(0)).verdict,
            SafetyVerdict::DefiniteError);
}

TEST(Predict, ThreadIdBoundsAndOverride) {
  ProgFixture f;
  OmpClauses clauses;
  clauses.num_threads = 4;
  Block region;
  region.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                      AssignOp::Assign, Expr::fp_const(1.0)));
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));

  // arr[tid] with a 4-thread team on a 4-element array: exactly in bounds.
  const RangePrediction pred = predict_ranges(f.prog);
  EXPECT_EQ(pred.safety, SafetyVerdict::Safe);
  EXPECT_EQ(pred.subscripts[f.arr], Interval::of(0, 3));

  // An 8-thread override widens the subscript past the array.
  RangeOptions opt;
  opt.num_threads_override = 8;
  const RangePrediction wide = predict_ranges(f.prog, opt);
  EXPECT_EQ(wide.safety, SafetyVerdict::PossibleError);
  EXPECT_EQ(wide.subscripts[f.arr], Interval::of(0, 7));
}

TEST(Predict, CheckObservedFlagsEscapes) {
  ProgFixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.x, nullptr}, AssignOp::Assign, Expr::int_const(5)));
  const RangePrediction pred = predict_ranges(f.prog);

  interp::ValueTrace trace;
  trace.reset(f.prog.var_count());
  trace.scalars[f.x].note(5);
  EXPECT_TRUE(check_observed(pred, trace).empty());

  // An observation outside the prediction is a violation — the sweep's
  // failure path actually fires.
  trace.scalars[f.x].note(6);
  const auto violations = check_observed(pred, trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].var, f.x);
  EXPECT_FALSE(violations[0].is_subscript);
  EXPECT_EQ(violations[0].observed_hi, 6);
}

// ---------------------------------------------------------------------------
// Soundness differential sweep + interval-precision gate
// ---------------------------------------------------------------------------

struct SweepStats {
  int programs = 0;
  int executed = 0;
  int interp_errors = 0;
  int violations = 0;
  int baseline_racy = 0;
  int interval_racy = 0;
  int rescued = 0;
};

/// One draft through the full differential: interval verdicts (affine-only
/// vs interval-enabled), then prediction vs the interpreter's observed
/// value trace under a 4-thread override. Unsound combinations fail the
/// test immediately; counts accumulate into `stats`.
void sweep_program(const ast::Program& prog, const fp::InputSet& input,
                   SweepStats& stats) {
  ++stats.programs;

  AnalyzeOptions affine_only;
  affine_only.use_intervals = false;
  const bool b_racy = !analyze_races(prog, affine_only).race_free();
  const bool i_racy = !analyze_races(prog).race_free();
  stats.baseline_racy += b_racy;
  stats.interval_racy += i_racy;
  stats.rescued += b_racy && !i_racy;
  // Intervals only ever sharpen the dependence test: a draft clean under
  // the affine baseline must stay clean with intervals on.
  ASSERT_FALSE(i_racy && !b_racy)
      << "interval analysis flagged a baseline-clean draft: " << prog.name();

  RangeOptions ropt;
  ropt.num_threads_override = 4;
  const RangePrediction pred = predict_ranges(prog, input, ropt);

  interp::ValueTrace trace;
  interp::InterpOptions iopt;
  iopt.num_threads_override = 4;
  iopt.values = &trace;
  try {
    (void)interp::execute(prog, input, iopt);
  } catch (const Error&) {
    ++stats.interp_errors;
    // A trapping execution on a Safe verdict is the unsoundness the gate
    // exists to catch.
    ASSERT_NE(pred.safety, SafetyVerdict::Safe)
        << "interpreter error on a Safe-verdict program: " << prog.name();
    return;
  }
  ++stats.executed;
  const auto violations = check_observed(pred, trace);
  stats.violations += static_cast<int>(violations.size());
  if (!violations.empty()) {
    const RangeViolation& v = violations[0];
    ADD_FAILURE() << "observed range escaped prediction in " << prog.name()
                  << ": var " << v.var << (v.is_subscript ? " (subscript)" : "")
                  << " observed [" << v.observed_lo << ", " << v.observed_hi
                  << "] predicted " << to_string(v.predicted);
  }
}

void sweep_config(const GeneratorConfig& cfg, const char* tag, int count,
                  std::uint64_t salt, SweepStats& stats) {
  const core::ProgramGenerator generator(cfg);
  fp::InputGenOptions igopt;
  // The generator's raw-subscript eligibility assumes inputs respect
  // max_loop_trip_count, exactly as the campaign wires it.
  igopt.max_trip_count = cfg.max_loop_trip_count;
  const fp::InputGenerator input_gen(igopt);
  for (int n = 0; n < count; ++n) {
    const ast::Program prog = generator.generate(
        std::string(tag) + "_" + std::to_string(n), hash_combine(salt, n));
    RandomEngine rng(hash_combine(salt ^ 0x1234, n));
    const fp::InputSet input = input_gen.generate(prog.signature(), rng);
    sweep_program(prog, input, stats);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The headline acceptance gate (CI: --gtest_filter=*SoundnessSweep*):
// 2,000+ fixed-seed drafts across the default grammar, every feature gate,
// and the rangeidx streams, with zero observed-outside-predicted violations
// and zero interpreter errors on Safe verdicts.
TEST(ValueRange, SoundnessSweepHasNoViolations) {
  SweepStats stats;

  GeneratorConfig base;
  base.array_size = 64;
  base.max_loop_trip_count = 12;
  sweep_config(base, "vr_base", 900, 0xab5e, stats);

  GeneratorConfig features = base;
  features.enable_features("atomic,single,master,schedule");
  sweep_config(features, "vr_feat", 600, 0xfea2, stats);

  GeneratorConfig rangeidx = base;
  rangeidx.enable_features("rangeidx");
  sweep_config(rangeidx, "vr_ridx", 600, 0x21d8, stats);

  EXPECT_GE(stats.programs, 2000);
  EXPECT_EQ(stats.violations, 0);
  // The sweep must actually execute the overwhelming majority of drafts —
  // a sweep that trips on every program would vacuously pass the
  // observed-vs-predicted check.
  EXPECT_GT(stats.executed, stats.programs / 2);
}

// The interval-precision gate: on rangeidx streams (banked thread-id and
// iv-mod-size subscripts) the affine-only baseline filters drafts that
// interval analysis proves race-free — strictly fewer filtered drafts, and
// never a draft the baseline accepts but intervals reject (asserted per
// draft in sweep_program).
TEST(ValueRange, IntervalPrecisionOnRangeidxStreams) {
  GeneratorConfig cfg;
  cfg.array_size = 64;
  cfg.max_loop_trip_count = 12;
  cfg.enable_features("rangeidx");

  const core::ProgramGenerator generator(cfg);
  SweepStats stats;
  AnalyzerStats astats;
  for (int n = 0; n < 500; ++n) {
    const ast::Program prog =
        generator.generate("ridx_" + std::to_string(n), hash_combine(0x7a9e, n));
    ++stats.programs;
    AnalyzeOptions affine_only;
    affine_only.use_intervals = false;
    const bool b_racy = !analyze_races(prog, affine_only).race_free();
    const bool i_racy =
        !analyze_races(prog, AnalyzeOptions{}, &astats).race_free();
    stats.baseline_racy += b_racy;
    stats.interval_racy += i_racy;
    stats.rescued += b_racy && !i_racy;
    ASSERT_FALSE(i_racy && !b_racy)
        << "interval analysis flagged a baseline-clean draft: " << prog.name();
  }

  // Strictly sharper: some drafts rescued, so strictly fewer filtered.
  EXPECT_GT(stats.rescued, 0);
  EXPECT_LT(stats.interval_racy, stats.baseline_racy);
  // And the sharpening came from the two interval mechanisms.
  EXPECT_GT(astats.interval_disjoint_pairs, 0u);
  EXPECT_GT(astats.mod_rewrites, 0u);
}

// Default streams are bit-identical with intervals on or off: the grammar
// only emits subscript pairs the affine test already decides, so enabling
// intervals must not shift any campaign draft stream (the seed-keyed CI
// gates depend on it).
TEST(ValueRange, DefaultStreamVerdictsUnchangedByIntervals) {
  GeneratorConfig cfg;
  const core::ProgramGenerator generator(cfg);
  for (int n = 0; n < 300; ++n) {
    const ast::Program prog =
        generator.generate("dflt_" + std::to_string(n), hash_combine(0xdf17, n));
    AnalyzeOptions affine_only;
    affine_only.use_intervals = false;
    EXPECT_EQ(analyze_races(prog, affine_only).race_free(),
              analyze_races(prog).race_free())
        << "intervals changed a default-stream verdict: " << prog.name();
  }
}

}  // namespace
}  // namespace ompfuzz::analysis
