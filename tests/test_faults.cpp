// Fault-tolerance tests: deterministic fault injection across every site,
// retry/backoff absorbing transient faults with byte-identical reports,
// exhausted retries quarantining deterministically, backend death + failover
// to an identity-matched spare, store write/read degradation, and the
// short-batch downgrade (one bad backend must not abort a campaign).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/async_process.hpp"
#include "harness/campaign.hpp"
#include "harness/report.hpp"
#include "harness/sim_executor.hpp"
#include "harness/subprocess_executor.hpp"
#include "support/config.hpp"
#include "support/error.hpp"
#include "support/fault_injection.hpp"
#include "support/result_store.hpp"

namespace ompfuzz {
namespace {

using harness::Campaign;
using harness::CampaignResult;
using harness::Executor;
using harness::SimExecutor;
using harness::SimExecutorOptions;
using harness::TestCase;

std::string temp_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/ompfuzz_faults_" +
                    std::to_string(getpid()) + "_" + std::to_string(counter++);
  mkdir(dir.c_str(), 0755);
  return dir;
}

void write_script(const std::string& path, const std::string& content) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
  }
  ASSERT_EQ(chmod(path.c_str(), 0755), 0);
}

FaultConfig faults_at(const char* sites, double rate, std::uint64_t seed = 0xFA17) {
  FaultConfig config;
  config.enabled = true;
  config.rate = rate;
  config.seed = seed;
  config.sites = sites;
  return config;
}

CampaignConfig sim_config(int threads = 1) {
  CampaignConfig cfg;
  cfg.generator.max_loop_trip_count = 40;  // keep interpretation fast
  cfg.num_programs = 8;
  cfg.inputs_per_program = 2;
  cfg.seed = 0xFA175;
  cfg.threads = threads;
  cfg.retry.base_ms = 0;  // no real sleeping in tests
  return cfg;
}

CampaignResult run_sim(const CampaignConfig& cfg) {
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor exec(opt);
  Campaign campaign(cfg, exec);
  return campaign.run();
}

// ------------------------------------------------------------- config ------

TEST(FaultConfigTest, ParsesFaultsAndRetrySections) {
  const ConfigFile file = ConfigFile::parse(R"(
[faults]
enabled = true
rate = 0.25
seed = 99
sites = dispatch, store_write

[retry]
max_attempts = 5
base_ms = 1
cap_ms = 64
backend_death_threshold = 2
)");
  const FaultConfig faults = FaultConfig::from_config(file);
  EXPECT_TRUE(faults.enabled);
  EXPECT_DOUBLE_EQ(faults.rate, 0.25);
  EXPECT_EQ(faults.seed, 99u);
  EXPECT_EQ(faults.sites, "dispatch, store_write");
  faults.validate();

  const RetryConfig retry = RetryConfig::from_config(file);
  EXPECT_EQ(retry.max_attempts, 5);
  EXPECT_EQ(retry.base_ms, 1);
  EXPECT_EQ(retry.cap_ms, 64);
  EXPECT_EQ(retry.backend_death_threshold, 2);
  retry.validate();
}

TEST(FaultConfigTest, ValidationRejectsBadValues) {
  FaultConfig faults;
  faults.rate = 1.5;
  EXPECT_THROW(faults.validate(), ConfigError);
  faults.rate = 0.5;
  faults.sites = "dispatch, not_a_site";
  EXPECT_THROW(faults.validate(), ConfigError);

  RetryConfig retry;
  retry.max_attempts = 0;
  EXPECT_THROW(retry.validate(), ConfigError);
  retry = RetryConfig{};
  retry.backend_death_threshold = 0;
  EXPECT_THROW(retry.validate(), ConfigError);
}

// ----------------------------------------------------------- injector ------

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  auto stream = [](std::uint64_t seed) {
    const ScopedFaultInjection scoped(faults_at("dispatch", 0.5, seed));
    std::vector<bool> decisions;
    for (int i = 0; i < 128; ++i) {
      decisions.push_back(inject_fault(FaultSite::Dispatch));
    }
    return decisions;
  };
  const auto a = stream(1);
  EXPECT_EQ(a, stream(1));   // same seed, same ordinal -> same decision
  EXPECT_NE(a, stream(2));   // 2^-128 flake odds
}

TEST(FaultInjectorTest, SiteMaskGatesInjection) {
  const ScopedFaultInjection scoped(faults_at("store_write", 1.0));
  EXPECT_FALSE(inject_fault(FaultSite::Dispatch));
  EXPECT_TRUE(inject_fault(FaultSite::StoreWrite));
  const auto& injector = FaultInjector::instance();
  EXPECT_EQ(injector.site_stats(FaultSite::Dispatch).injected, 0u);
  EXPECT_EQ(injector.site_stats(FaultSite::StoreWrite).injected, 1u);
  EXPECT_EQ(injector.total_injected(), 1u);
}

TEST(FaultInjectorTest, DisabledInjectionIsFree) {
  FaultInjector::instance().disable();
  EXPECT_FALSE(inject_fault(FaultSite::Dispatch));
  EXPECT_EQ(FaultInjector::instance().site_stats(FaultSite::Dispatch).checked, 0u);
}

// ------------------------------------------- transient -> byte-identical ---

TEST(FaultTolerance, TransientDispatchFaultsLeaveReportByteIdentical) {
  const std::string baseline = harness::to_json(run_sim(sim_config()));
  ASSERT_NE(baseline.find("\"robustness\""), std::string::npos);

  CampaignConfig cfg = sim_config();
  cfg.retry.max_attempts = 8;
  const ScopedFaultInjection scoped(faults_at("dispatch", 0.3));
  const CampaignResult faulted = run_sim(cfg);
  EXPECT_EQ(harness::to_json(faulted), baseline);
  EXPECT_TRUE(faulted.robustness.quarantined.empty());
  EXPECT_TRUE(faulted.robustness.lost_backends.empty());
  EXPECT_GE(FaultInjector::instance().site_stats(FaultSite::Dispatch).injected, 1u);
}

TEST(FaultTolerance, ThreadedTransientFaultsLeaveReportByteIdentical) {
  const std::string baseline = harness::to_json(run_sim(sim_config(4)));

  // 16 attempts at rate 0.2: per-triple exhaustion odds ~0.2^16, negligible.
  CampaignConfig cfg = sim_config(4);
  cfg.retry.max_attempts = 16;
  const ScopedFaultInjection scoped(faults_at("dispatch", 0.2));
  EXPECT_EQ(harness::to_json(run_sim(cfg)), baseline);
}

TEST(FaultTolerance, RetryCountersReportOnSideChannelOnly) {
  CampaignConfig cfg = sim_config();
  cfg.retry.max_attempts = 8;
  const ScopedFaultInjection scoped(faults_at("dispatch", 0.3));
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor exec(opt);
  Campaign campaign(cfg, exec);
  const CampaignResult result = campaign.run();
  const auto counters = campaign.robustness_counters();
  EXPECT_GE(counters.retried_triples, 1u);
  EXPECT_GE(counters.retry_rounds, 1u);
  // The counters render to the stdout summary, never into the JSON.
  const std::string summary =
      harness::render_robustness_summary(result, counters);
  EXPECT_NE(summary.find("triples retried"), std::string::npos);
  EXPECT_NE(summary.find("dispatch:"), std::string::npos);
  EXPECT_EQ(harness::to_json(result).find("retried"), std::string::npos);
}

// -------------------------------------------- exhausted -> quarantined -----

TEST(FaultTolerance, ExhaustedRetriesQuarantineDeterministically) {
  // Rate 1.0 on dispatch: every batch fabricates, retries never help. A huge
  // death threshold keeps the backend alive so this isolates the quarantine
  // path from failover.
  CampaignConfig cfg = sim_config();
  cfg.num_programs = 3;
  cfg.retry.max_attempts = 2;
  cfg.retry.backend_death_threshold = 1'000'000;

  auto run_quarantined = [&] {
    const ScopedFaultInjection scoped(faults_at("dispatch", 1.0));
    return run_sim(cfg);
  };
  const CampaignResult a = run_quarantined();
  EXPECT_TRUE(a.robustness.lost_backends.empty());
  // Every (program, input, impl) triple is quarantined, in merge order.
  ASSERT_EQ(a.robustness.quarantined.size(),
            static_cast<std::size_t>(a.total_runs));
  EXPECT_EQ(a.robustness.quarantined.front().program_index, 0);
  EXPECT_EQ(a.robustness.quarantined.front().input_index, 0);
  EXPECT_EQ(a.robustness.quarantined.front().impl, a.impl_names.front());
  for (const auto& outcome : a.outcomes) {
    for (const auto& run : outcome.runs) {
      EXPECT_TRUE(run.harness_failure);
      EXPECT_EQ(run.status, core::RunStatus::Crash);
    }
  }
  // Deterministic: the same seed yields the identical report, quarantine
  // records included.
  EXPECT_EQ(harness::to_json(run_quarantined()), harness::to_json(a));
}

// ------------------------------------------------- death + failover --------

/// Delegates to an inner SimExecutor but fails every run_batch from the
/// `fail_from`-th call on — a backend that dies mid-campaign and stays dead.
class DyingExecutor final : public Executor {
 public:
  DyingExecutor(SimExecutor& inner, int fail_from)
      : inner_(inner), fail_from_(fail_from) {}

  [[nodiscard]] core::RunResult run(const TestCase& test, std::size_t input_index,
                                    const std::string& impl_name) override {
    return inner_.run(test, input_index, impl_name);
  }
  [[nodiscard]] std::vector<core::RunResult> run_batch(
      const TestCase& test, const std::vector<std::size_t>& input_indices,
      const std::vector<std::string>& impls) override {
    if (calls_++ >= fail_from_) throw Error("backend killed mid-campaign");
    return inner_.run_batch(test, input_indices, impls);
  }
  [[nodiscard]] std::vector<std::string> implementations() const override {
    return inner_.implementations();
  }
  [[nodiscard]] std::string impl_identity(const std::string& name) const override {
    return inner_.impl_identity(name);
  }
  [[nodiscard]] bool thread_safe() const noexcept override { return true; }

 private:
  SimExecutor& inner_;
  int fail_from_;
  int calls_ = 0;
};

TEST(Failover, DeadBackendMigratesToMatchingSpareByteIdentically) {
  const std::string baseline = harness::to_json(run_sim(sim_config()));

  CampaignConfig cfg = sim_config();
  cfg.retry.max_attempts = 2;
  cfg.retry.backend_death_threshold = 2;
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor inner(opt);   // identity donor for the dying primary
  SimExecutor spare(opt);   // identical implementations() + impl_identity()
  DyingExecutor dying(inner, 3);
  Campaign campaign(cfg, dying);
  campaign.add_failover(&spare);
  const CampaignResult result = campaign.run();

  EXPECT_EQ(harness::to_json(result), baseline);
  EXPECT_TRUE(result.robustness.quarantined.empty());
  EXPECT_TRUE(result.robustness.lost_backends.empty());
  const auto counters = campaign.robustness_counters();
  EXPECT_GE(counters.failover_units, 1u);
  EXPECT_EQ(counters.fabricated_units, 0u);
}

TEST(Failover, MismatchedSpareIsNeverUsed) {
  CampaignConfig cfg = sim_config();
  cfg.num_programs = 4;
  cfg.retry.max_attempts = 2;
  cfg.retry.backend_death_threshold = 2;
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor inner(opt);
  SimExecutorOptions other = opt;
  other.num_threads = 4;    // different identity: not a valid stand-in
  SimExecutor wrong_spare(other);
  DyingExecutor dying(inner, 0);
  Campaign campaign(cfg, dying);
  campaign.add_failover(&wrong_spare);
  const CampaignResult result = campaign.run();

  ASSERT_EQ(result.robustness.lost_backends,
            std::vector<std::string>{"default"});
  EXPECT_FALSE(result.robustness.quarantined.empty());
  EXPECT_EQ(campaign.robustness_counters().failover_units, 0u);
}

TEST(Failover, DeadBackendWithoutSpareDegradesGracefully) {
  CampaignConfig cfg = sim_config();
  cfg.num_programs = 6;
  cfg.retry.max_attempts = 2;
  cfg.retry.backend_death_threshold = 2;
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor inner(opt);
  DyingExecutor dying(inner, 2);  // unit 0 succeeds, everything after fails
  Campaign campaign(cfg, dying);
  const CampaignResult result = campaign.run();

  // The campaign completes with full dimensions; the dead backend's share is
  // fabricated, quarantined, and reported as a lost backend.
  EXPECT_EQ(result.total_tests, cfg.num_programs * cfg.inputs_per_program);
  ASSERT_EQ(result.robustness.lost_backends,
            std::vector<std::string>{"default"});
  EXPECT_FALSE(result.robustness.quarantined.empty());
  EXPECT_GE(campaign.robustness_counters().fabricated_units, 1u);
  // Program 0 ran before the death: its runs are genuine.
  for (const auto& run : result.outcomes.front().runs) {
    EXPECT_FALSE(run.harness_failure);
  }
}

// ------------------------------------------------------ short batches ------

/// Always returns one result fewer than requested — the misbehaving-backend
/// shape that used to abort the whole campaign via OMPFUZZ_CHECK.
class ShortBatchExecutor final : public Executor {
 public:
  [[nodiscard]] core::RunResult run(const TestCase&, std::size_t,
                                    const std::string& impl) override {
    core::RunResult r;
    r.impl = impl;
    return r;
  }
  [[nodiscard]] std::vector<core::RunResult> run_batch(
      const TestCase& test, const std::vector<std::size_t>& input_indices,
      const std::vector<std::string>& impls) override {
    auto results = Executor::run_batch(test, input_indices, impls);
    results.pop_back();
    return results;
  }
  [[nodiscard]] std::vector<std::string> implementations() const override {
    return {"short1", "short2"};
  }
  [[nodiscard]] bool thread_safe() const noexcept override { return true; }
};

TEST(ShortBatch, DowngradedToQuarantineInsteadOfAbort) {
  CampaignConfig cfg = sim_config();
  cfg.num_programs = 3;
  cfg.retry.max_attempts = 2;
  ShortBatchExecutor exec;
  Campaign campaign(cfg, exec);
  CampaignResult result;
  ASSERT_NO_THROW(result = campaign.run());
  EXPECT_EQ(result.robustness.quarantined.size(),
            static_cast<std::size_t>(result.total_runs));
  for (const auto& outcome : result.outcomes) {
    for (const auto& run : outcome.runs) EXPECT_TRUE(run.harness_failure);
  }
}

// ------------------------------------------------------ store degrade ------

StoreConfig store_config(const std::string& dir) {
  StoreConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir;
  return cfg;
}

TEST(StoreDegrade, WriteFailuresDisableStoreWithoutAborting) {
  const std::string baseline = harness::to_json(run_sim(sim_config()));

  const ScopedFaultInjection scoped(faults_at("store_write", 1.0));
  ResultStore store(store_config(temp_dir() + "/store"));
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor exec(opt);
  Campaign campaign(sim_config(), exec);
  campaign.set_result_store(&store);
  const CampaignResult result = campaign.run();

  EXPECT_EQ(harness::to_json(result), baseline);
  const auto stats = store.stats();
  EXPECT_EQ(stats.puts, 0u);
  EXPECT_GE(stats.write_failures,
            static_cast<std::uint64_t>(ResultStore::kWriteFailureLimit));
  EXPECT_TRUE(store.writes_disabled());
}

TEST(StoreDegrade, FsyncFailuresAreWriteFailuresToo) {
  const ScopedFaultInjection scoped(faults_at("store_fsync", 1.0));
  ResultStore store(store_config(temp_dir() + "/store"));
  core::RunResult result;
  result.impl = "gcc";
  store.put(RunKey{0x1234, "0x1p+0", "sim;gcc"}, result);
  EXPECT_EQ(store.stats().puts, 0u);
  EXPECT_EQ(store.stats().write_failures, 1u);
  // The result is still memoized in-process: same-store lookups keep hitting.
  EXPECT_TRUE(store.lookup(RunKey{0x1234, "0x1p+0", "sim;gcc"}).has_value());
}

TEST(StoreDegrade, ReadFaultsAreMissesAndCampaignRecovers) {
  const std::string dir = temp_dir() + "/store";
  const std::string baseline = harness::to_json(run_sim(sim_config()));

  {
    // Populate the store cleanly.
    ResultStore store(store_config(dir));
    SimExecutorOptions opt;
    opt.num_threads = 8;
    SimExecutor exec(opt);
    Campaign campaign(sim_config(), exec);
    campaign.set_result_store(&store);
    EXPECT_EQ(harness::to_json(campaign.run()), baseline);
    EXPECT_GE(store.stats().puts, 1u);
  }

  for (const char* site : {"store_read_short", "store_read_corrupt"}) {
    // A fresh store (cold memo) must treat damaged records as misses and the
    // campaign must re-execute to the identical report.
    const ScopedFaultInjection scoped(faults_at(site, 1.0));
    ResultStore store(store_config(dir));
    SimExecutorOptions opt;
    opt.num_threads = 8;
    SimExecutor exec(opt);
    Campaign campaign(sim_config(), exec);
    campaign.set_result_store(&store);
    EXPECT_EQ(harness::to_json(campaign.run()), baseline) << site;
    EXPECT_EQ(store.stats().hits, 0u) << site;
    EXPECT_GE(store.stats().misses, 1u) << site;
  }
}

// ------------------------------------------------- compile-stage faults ----

TEST(FaultTolerance, TransientCompileFaultsRecoverByteIdentically) {
  const std::string dir = temp_dir();
  const std::string payload = dir + "/payload.sh";
  write_script(payload, "#!/bin/sh\necho 42\necho \"time_us: 2000\"\n");
  const std::string cc = dir + "/cc.sh";
  write_script(cc, "#!/bin/sh\ncp " + payload + " \"$2\"\nchmod +x \"$2\"\n");
  const std::vector<ImplementationSpec> impls = {
      {"alpha", cc + " {src} {bin}", ""},
      {"beta", cc + " {src} {bin}", ""},
  };
  CampaignConfig cfg = sim_config();
  cfg.num_programs = 3;
  cfg.min_time_us = 0;

  auto run_subprocess = [&](const std::string& work_dir) {
    harness::SubprocessOptions opt;
    opt.work_dir = work_dir;
    opt.concurrent_runs = true;
    opt.max_inflight = 8;
    harness::SubprocessExecutor exec(impls, opt);
    Campaign campaign(cfg, exec);
    return campaign.run();
  };

  const std::string baseline = harness::to_json(run_subprocess(dir + "/clean"));

  cfg.retry.max_attempts = 10;
  for (const char* site : {"compile_spawn", "compile_timeout"}) {
    const ScopedFaultInjection scoped(faults_at(site, 0.4));
    const CampaignResult faulted =
        run_subprocess(dir + "/faulted_" + std::string(site));
    EXPECT_EQ(harness::to_json(faulted), baseline) << site;
    EXPECT_TRUE(faulted.robustness.quarantined.empty()) << site;
    EXPECT_GE(FaultInjector::instance()
                  .site_stats(*fault_site_by_name(site))
                  .injected,
              1u)
        << site;
  }
}

// ------------------------------------------------------- site coverage -----

TEST(FaultSiteCoverage, EverySiteCanFire) {
  // Exercise each site through its real component and require >= 1 injection.
  const auto fired = [](FaultSite site) {
    return FaultInjector::instance().site_stats(site).injected >= 1u;
  };

  {
    const ScopedFaultInjection scoped(faults_at("dispatch", 1.0));
    CampaignConfig cfg = sim_config();
    cfg.num_programs = 1;
    cfg.retry.max_attempts = 1;
    (void)run_sim(cfg);
    EXPECT_TRUE(fired(FaultSite::Dispatch));
  }
  for (const char* site : {"pool_pipe", "pool_fork", "pool_exec", "pool_stall"}) {
    const ScopedFaultInjection scoped(faults_at(site, 1.0));
    harness::AsyncProcessPool pool(2);
    const auto r = pool.submit({{"/bin/echo", "x"}, 5'000, false}).get();
    EXPECT_EQ(r.exit_code, 127) << site;
    EXPECT_TRUE(fired(*fault_site_by_name(site))) << site;
  }
  {
    const ScopedFaultInjection scoped(faults_at("pool_poll", 0.5));
    harness::AsyncProcessPool pool(2);
    (void)pool.submit({{"/bin/echo", "x"}, 5'000, false}).get();
    EXPECT_TRUE(fired(FaultSite::PoolPoll));
  }
  {
    const std::string dir = temp_dir();
    write_script(dir + "/cc.sh", "#!/bin/sh\nprintf '#!/bin/sh\\necho 1\\n' > \"$2\"\n"
                                 "chmod +x \"$2\"\n");
    const std::vector<ImplementationSpec> impls = {
        {"only", dir + "/cc.sh {src} {bin}", ""}};
    CampaignConfig cfg = sim_config();
    cfg.num_programs = 1;
    cfg.retry.max_attempts = 1;
    cfg.min_time_us = 0;
    for (const char* site : {"compile_spawn", "compile_timeout"}) {
      const ScopedFaultInjection scoped(faults_at(site, 1.0));
      harness::SubprocessOptions opt;
      opt.work_dir = dir + "/" + site;
      harness::SubprocessExecutor exec(impls, opt);
      Campaign campaign(cfg, exec);
      (void)campaign.run();
      EXPECT_TRUE(fired(*fault_site_by_name(site))) << site;
    }
  }
  {
    const std::string dir = temp_dir() + "/store";
    core::RunResult result;
    result.impl = "gcc";
    const RunKey key{0x77, "0x1p+0", "sim;gcc"};
    for (const char* site : {"store_write", "store_fsync"}) {
      const ScopedFaultInjection scoped(faults_at(site, 1.0));
      ResultStore store(store_config(dir));
      store.put(key, result);
      EXPECT_TRUE(fired(*fault_site_by_name(site))) << site;
    }
    {
      ResultStore store(store_config(dir));
      store.put(key, result);  // durable record for the read faults below
    }
    for (const char* site : {"store_read_short", "store_read_corrupt"}) {
      const ScopedFaultInjection scoped(faults_at(site, 1.0));
      ResultStore store(store_config(dir));
      EXPECT_FALSE(store.lookup(key).has_value()) << site;
      EXPECT_TRUE(fired(*fault_site_by_name(site))) << site;
    }
  }
}

}  // namespace
}  // namespace ompfuzz
