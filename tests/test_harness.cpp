// Tests for the campaign harness: SimExecutor semantics, campaign
// determinism and aggregation, report rendering, and the case-study analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/race_checker.hpp"
#include "harness/campaign.hpp"
#include "harness/perf_analyzer.hpp"
#include "harness/report.hpp"
#include "harness/sim_executor.hpp"
#include "support/error.hpp"

namespace ompfuzz::harness {
namespace {

CampaignConfig tiny_config(int programs = 8) {
  CampaignConfig cfg;
  cfg.num_programs = programs;
  cfg.inputs_per_program = 2;
  cfg.generator.num_threads = 8;
  cfg.generator.max_loop_trip_count = 30;
  cfg.min_time_us = 10;
  cfg.seed = 0xABCD;
  return cfg;
}

SimExecutorOptions tiny_options() {
  SimExecutorOptions opt;
  opt.num_threads = 8;
  opt.max_interp_steps = 2'000'000;
  return opt;
}

TEST(SimExecutor, ListsThreeVendorsByDefault) {
  SimExecutor exec(tiny_options());
  const auto impls = exec.implementations();
  ASSERT_EQ(impls.size(), 3u);
  EXPECT_EQ(impls[0], "gcc");
  EXPECT_EQ(impls[1], "clang");
  EXPECT_EQ(impls[2], "intel");
  EXPECT_THROW((void)exec.profile("msvc"), Error);
}

TEST(SimExecutor, RunsAreDeterministic) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(), exec);
  const TestCase test = campaign.make_test_case(0);
  const auto a = exec.run(test, 0, "gcc");
  const auto b = exec.run(test, 0, "gcc");
  EXPECT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
  EXPECT_EQ(std::isnan(a.output), std::isnan(b.output));
  if (!std::isnan(a.output)) {
    EXPECT_DOUBLE_EQ(a.output, b.output);
  }
}

TEST(SimExecutor, DifferentImplsDifferentTimes) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(), exec);
  const TestCase test = campaign.make_test_case(1);
  const auto gcc = exec.run(test, 0, "gcc");
  const auto intel = exec.run(test, 0, "intel");
  if (gcc.status == core::RunStatus::Ok && intel.status == core::RunStatus::Ok) {
    EXPECT_NE(gcc.time_us, intel.time_us);
  }
}

TEST(SimExecutor, DetailedRunExposesEventsAndCounters) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(), exec);
  const TestCase test = campaign.make_test_case(2);
  const auto d = exec.run_detailed(test, 0, "intel");
  if (d.result.status == core::RunStatus::Ok) {
    EXPECT_GT(d.events.total_ops(), 0u);
    EXPECT_GT(d.time.total_us(), 0.0);
    EXPECT_GT(d.counters.instructions, 0u);
    EXPECT_NEAR(d.result.time_us, d.time.total_us(), 1e-9);
  }
}

TEST(SimExecutor, InputIndexValidated) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(), exec);
  const TestCase test = campaign.make_test_case(0);
  EXPECT_THROW((void)exec.run(test, 99, "gcc"), Error);
}

TEST(SimExecutor, BudgetProducesSkipped) {
  SimExecutorOptions opt = tiny_options();
  opt.max_interp_steps = 50;  // absurdly small
  SimExecutor exec(opt);
  Campaign campaign(tiny_config(), exec);
  const TestCase test = campaign.make_test_case(0);
  const auto r = exec.run(test, 0, "gcc");
  EXPECT_EQ(r.status, core::RunStatus::Skipped);
}

// ------------------------------------------------------------ campaign -----

TEST(CampaignTest, TestCasesAreReproducible) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(), exec);
  const TestCase a = campaign.make_test_case(3);
  const TestCase b = campaign.make_test_case(3);
  EXPECT_EQ(a.program.fingerprint(), b.program.fingerprint());
  ASSERT_EQ(a.inputs.size(), b.inputs.size());
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs[i].hash(), b.inputs[i].hash());
  }
}

TEST(CampaignTest, GeneratedTestsAreRaceFree) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(20), exec);
  for (int p = 0; p < 20; ++p) {
    const TestCase test = campaign.make_test_case(p);
    EXPECT_TRUE(core::check_races(test.program).race_free());
  }
}

TEST(CampaignTest, FullRunAggregatesConsistently) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(10), exec);
  const auto result = campaign.run();
  EXPECT_EQ(result.total_tests, 20);      // 10 programs x 2 inputs
  EXPECT_EQ(result.total_runs, 60);       // x 3 impls
  EXPECT_EQ(result.outcomes.size(), 20u);
  EXPECT_EQ(result.impl_names.size(), 3u);
  // Per-impl aggregates must equal a recount over outcomes.
  std::map<std::string, int> recount;
  for (const auto& o : result.outcomes) {
    for (std::size_t r = 0; r < o.runs.size(); ++r) {
      if (o.verdict.per_run[r] != core::OutlierKind::None) {
        recount[o.runs[r].impl]++;
      }
    }
  }
  for (const auto& name : result.impl_names) {
    EXPECT_EQ(result.per_impl.at(name).total(), recount[name]) << name;
  }
  EXPECT_GE(result.outlier_rate(), 0.0);
  EXPECT_LE(result.outlier_rate(), 1.0);
}

TEST(CampaignTest, RunIsDeterministic) {
  SimExecutor exec1(tiny_options());
  Campaign campaign1(tiny_config(6), exec1);
  const auto r1 = campaign1.run();
  SimExecutor exec2(tiny_options());
  Campaign campaign2(tiny_config(6), exec2);
  const auto r2 = campaign2.run();
  EXPECT_EQ(r1.total_runs, r2.total_runs);
  EXPECT_EQ(r1.analyzable_tests, r2.analyzable_tests);
  EXPECT_EQ(r1.outlier_runs(), r2.outlier_runs());
  for (const auto& name : r1.impl_names) {
    EXPECT_EQ(r1.per_impl.at(name).fast, r2.per_impl.at(name).fast);
    EXPECT_EQ(r1.per_impl.at(name).slow, r2.per_impl.at(name).slow);
  }
}

TEST(CampaignTest, SeedChangesOutcomes) {
  SimExecutor exec(tiny_options());
  auto cfg1 = tiny_config(6);
  auto cfg2 = tiny_config(6);
  cfg2.seed = cfg1.seed + 1;
  Campaign c1(cfg1, exec);
  Campaign c2(cfg2, exec);
  EXPECT_NE(c1.make_test_case(0).program.fingerprint(),
            c2.make_test_case(0).program.fingerprint());
}

TEST(CampaignTest, ProgressCallbackInvoked) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(5), exec);
  int calls = 0;
  int last_done = 0;
  (void)campaign.run([&](int done, int total) {
    ++calls;
    EXPECT_EQ(total, 5);
    EXPECT_GT(done, last_done);
    last_done = done;
  });
  EXPECT_EQ(calls, 5);
}

// ------------------------------------------------------------ reports ------

TEST(Report, Table1HasAllImplRows) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(6), exec);
  const auto result = campaign.run();
  const std::string table = render_table1(result);
  EXPECT_NE(table.find("Implementation"), std::string::npos);
  EXPECT_NE(table.find("Slow"), std::string::npos);
  EXPECT_NE(table.find("Hang"), std::string::npos);
  for (const auto& name : result.impl_names) {
    EXPECT_NE(table.find(name), std::string::npos);
  }
}

TEST(Report, SummaryMentionsKeyRates) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(6), exec);
  const auto result = campaign.run();
  const std::string summary = render_summary(result);
  EXPECT_NE(summary.find("runs:"), std::string::npos);
  EXPECT_NE(summary.find("outlier runs:"), std::string::npos);
  EXPECT_NE(summary.find("correctness outliers:"), std::string::npos);
}

TEST(Report, JsonIsWellFormedEnough) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(4), exec);
  const auto result = campaign.run();
  const std::string json = to_json(result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"per_impl\""), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\""), std::string::npos);
  // Balanced braces/brackets (a cheap structural check).
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
}

TEST(Report, OutlierListRenders) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(10), exec);
  const auto result = campaign.run();
  const std::string list = render_outlier_list(result);
  EXPECT_NE(list.find("Kind"), std::string::npos);
}

// ------------------------------------------------------------ analyzer -----

TEST(PerfAnalyzer, CounterComparisonTable) {
  rt::PerfCounters a;
  a.context_switches = 232;
  a.cycles = 110520780;
  rt::PerfCounters b;
  b.context_switches = 10;
  b.cycles = 154797061;
  const std::string table = render_counter_comparison("Intel", a, "GCC", b);
  EXPECT_NE(table.find("context-switches"), std::string::npos);
  EXPECT_NE(table.find("110,520,780"), std::string::npos);
  EXPECT_NE(table.find("154,797,061"), std::string::npos);
  EXPECT_NE(table.find("branch-misses"), std::string::npos);
}

TEST(PerfAnalyzer, CaseStudyReRunsMatchCampaign) {
  SimExecutor exec(tiny_options());
  Campaign campaign(tiny_config(10), exec);
  const auto result = campaign.run();
  // Pick any outcome and re-run it in detailed mode: times must match the
  // campaign's recorded runs exactly (full determinism end to end).
  const auto& outcome = result.outcomes.front();
  const auto cs = analyze_case(campaign, exec, outcome, "gcc", "intel");
  EXPECT_EQ(cs.subject.result.status, outcome.runs[0].status);
  if (outcome.runs[0].status == core::RunStatus::Ok) {
    EXPECT_DOUBLE_EQ(cs.subject.result.time_us, outcome.runs[0].time_us);
  }
  EXPECT_EQ(cs.baseline.result.status, outcome.runs[2].status);
}

TEST(PerfAnalyzer, TimeBreakdownRenders) {
  rt::TimeBreakdown t;
  t.compute_ns = 1e6;
  t.launch_ns = 2e5;
  t.critical_ns = 3e5;
  const std::string out = render_time_breakdown("gcc", t);
  EXPECT_NE(out.find("compute"), std::string::npos);
  EXPECT_NE(out.find("critical sections"), std::string::npos);
  EXPECT_NE(out.find("total"), std::string::npos);
}

}  // namespace
}  // namespace ompfuzz::harness
