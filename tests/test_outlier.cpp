// Tests for the outlier detection algebra of Section IV.
#include <gtest/gtest.h>

#include "core/outlier.hpp"
#include "support/error.hpp"

namespace ompfuzz::core {
namespace {

RunResult ok(const std::string& impl, double time_us, double output = 1.0) {
  RunResult r;
  r.impl = impl;
  r.status = RunStatus::Ok;
  r.time_us = time_us;
  r.output = output;
  return r;
}

RunResult failed(const std::string& impl, RunStatus status) {
  RunResult r;
  r.impl = impl;
  r.status = status;
  return r;
}

OutlierDetector detector(double alpha = 0.2, double beta = 1.5,
                         double min_time = 1000.0) {
  return OutlierDetector({alpha, beta, min_time});
}

// ------------------------------------------------------------ Eq. 1 --------

TEST(ComparableTimes, WithinAlphaIsComparable) {
  EXPECT_TRUE(comparable_times(100.0, 110.0, 0.2));
  EXPECT_TRUE(comparable_times(110.0, 100.0, 0.2));  // symmetric
  EXPECT_TRUE(comparable_times(100.0, 120.0, 0.2));  // boundary inclusive
}

TEST(ComparableTimes, BeyondAlphaIsNot) {
  EXPECT_FALSE(comparable_times(100.0, 121.0, 0.2));
  EXPECT_FALSE(comparable_times(50.0, 100.0, 0.2));
}

TEST(ComparableTimes, ZeroHandling) {
  EXPECT_TRUE(comparable_times(0.0, 0.0, 0.2));   // equal zeros
  EXPECT_FALSE(comparable_times(0.0, 10.0, 0.2)); // Eq. 1 needs min != 0
}

// ------------------------------------------------------------ Eq. 2 --------

TEST(Outlier, SlowOutlierDetected) {
  // The paper's example: two comparable runs, the third 1.8x slower.
  const auto det = detector();
  const std::vector<RunResult> runs = {ok("a", 5000), ok("b", 5200), ok("c", 9200)};
  const auto v = det.analyze(runs);
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.per_run[0], OutlierKind::None);
  EXPECT_EQ(v.per_run[1], OutlierKind::None);
  EXPECT_EQ(v.per_run[2], OutlierKind::Slow);
  EXPECT_NEAR(v.midpoint_us, 5100.0, 1e-9);
}

TEST(Outlier, FastOutlierDetected) {
  const auto det = detector();
  const std::vector<RunResult> runs = {ok("a", 9000), ok("b", 9800), ok("c", 3000)};
  const auto v = det.analyze(runs);
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.per_run[2], OutlierKind::Fast);
}

TEST(Outlier, BetaBoundaryInclusive) {
  const auto det = detector(0.2, 1.5);
  // midpoint = 2000; 3000 / 2000 = exactly 1.5 -> slow (Eq. 2 uses >=).
  const auto v = det.analyze(
      std::vector<RunResult>{ok("a", 2000), ok("b", 2000), ok("c", 3000)});
  EXPECT_EQ(v.per_run[2], OutlierKind::Slow);
}

TEST(Outlier, JustUnderBetaIsNotAnOutlier) {
  const auto det = detector(0.2, 1.5);
  const auto v = det.analyze(
      std::vector<RunResult>{ok("a", 2000), ok("b", 2000), ok("c", 2980)});
  EXPECT_EQ(v.per_run[2], OutlierKind::None);
}

TEST(Outlier, AllComparableNoOutliers) {
  const auto det = detector();
  const auto v = det.analyze(
      std::vector<RunResult>{ok("a", 5000), ok("b", 5300), ok("c", 5600)});
  ASSERT_TRUE(v.analyzable);
  EXPECT_FALSE(v.has_outlier());
  EXPECT_EQ(v.comparable_group.size(), 3u);
}

TEST(Outlier, MinTimeFilterBlocksFastTests) {
  const auto det = detector(0.2, 1.5, 1000.0);
  const auto v = det.analyze(
      std::vector<RunResult>{ok("a", 500), ok("b", 520), ok("c", 2000)});
  EXPECT_FALSE(v.analyzable);
  EXPECT_EQ(v.filter_reason, "midpoint below minimum-time filter");
  EXPECT_FALSE(v.has_outlier());
}

TEST(Outlier, NoComparableBaseline) {
  const auto det = detector();
  // Pairwise ratios all exceed alpha: no clique of size >= 2.
  const auto v = det.analyze(
      std::vector<RunResult>{ok("a", 1000), ok("b", 2000), ok("c", 4000)});
  EXPECT_FALSE(v.analyzable);
  EXPECT_EQ(v.filter_reason, "no comparable baseline group");
}

TEST(Outlier, LargestCliqueWins) {
  const auto det = detector();
  // Three comparable around 5000 plus one pair around 2000: the size-3
  // clique is the baseline, the 2000s become fast outliers.
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 5000), ok("b", 5100), ok("c", 5200), ok("d", 2000), ok("e", 2050)});
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.comparable_group.size(), 3u);
  EXPECT_EQ(v.per_run[3], OutlierKind::Fast);
  EXPECT_EQ(v.per_run[4], OutlierKind::Fast);
}

TEST(Outlier, TwoImplementationsWork) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{ok("a", 5000), ok("b", 5100)});
  ASSERT_TRUE(v.analyzable);
  EXPECT_FALSE(v.has_outlier());
}

TEST(Outlier, SingleRunIsNotAnalyzable) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{ok("a", 5000)});
  EXPECT_FALSE(v.analyzable);
  EXPECT_EQ(v.filter_reason, "fewer than two OK runs");
}

// ------------------------------------------------- correctness outliers ----

TEST(Outlier, CrashAmongOkRunsIsOutlier) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 5000), failed("b", RunStatus::Crash), ok("c", 5100)});
  EXPECT_EQ(v.per_run[1], OutlierKind::Crash);
  // Performance analysis still runs on the remaining OK pair.
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.per_run[0], OutlierKind::None);
}

TEST(Outlier, HangAmongOkRunsIsOutlier) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 5000), ok("b", 5100), failed("c", RunStatus::Hang)});
  EXPECT_EQ(v.per_run[2], OutlierKind::Hang);
}

TEST(Outlier, AllCrashedIsNotAnOutlier) {
  // If every implementation fails, no implementation is the odd one out.
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{
      failed("a", RunStatus::Crash), failed("b", RunStatus::Crash),
      failed("c", RunStatus::Crash)});
  EXPECT_FALSE(v.has_outlier());
}

TEST(Outlier, TwoFailuresOneOkFlagsBoth) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 5000), failed("b", RunStatus::Crash), failed("c", RunStatus::Hang)});
  EXPECT_EQ(v.per_run[1], OutlierKind::Crash);
  EXPECT_EQ(v.per_run[2], OutlierKind::Hang);
  EXPECT_FALSE(v.analyzable);  // only one OK run left
}

TEST(Outlier, SkippedRunsAreExcluded) {
  const auto det = detector();
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 5000), failed("b", RunStatus::Skipped), ok("c", 5100)});
  EXPECT_EQ(v.per_run[1], OutlierKind::None);  // skipped is not a failure
  ASSERT_TRUE(v.analyzable);
}

// ------------------------------------------------------------ parameters ---

TEST(Outlier, AlphaControlsComparability) {
  // With alpha=0.5, 5000 and 7000 become comparable (ratio 0.4).
  const auto loose = detector(0.5, 1.5);
  const auto v = loose.analyze(
      std::vector<RunResult>{ok("a", 5000), ok("b", 7000), ok("c", 20000)});
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.comparable_group.size(), 2u);
  EXPECT_EQ(v.per_run[2], OutlierKind::Slow);
}

TEST(Outlier, BetaControlsSensitivity) {
  const auto strict = detector(0.2, 3.0);
  const auto v = strict.analyze(
      std::vector<RunResult>{ok("a", 5000), ok("b", 5100), ok("c", 12000)});
  ASSERT_TRUE(v.analyzable);
  EXPECT_EQ(v.per_run[2], OutlierKind::None);  // 2.4x < beta 3.0
}

TEST(Outlier, InvalidParamsThrow) {
  EXPECT_THROW(OutlierDetector({0.0, 1.5, 0.0}), Error);
  EXPECT_THROW(OutlierDetector({0.2, 1.0, 0.0}), Error);
}

TEST(Outlier, StatusToStringCoverage) {
  EXPECT_STREQ(to_string(RunStatus::Ok), "OK");
  EXPECT_STREQ(to_string(RunStatus::Crash), "CRASH");
  EXPECT_STREQ(to_string(RunStatus::Hang), "HANG");
  EXPECT_STREQ(to_string(OutlierKind::Fast), "fast");
}

// Property sweep: for a comparable pair at base time T plus one run at r*T,
// classification follows the sign and magnitude of r exactly.
class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, ClassificationMatchesRatio) {
  const double ratio = GetParam();
  const auto det = detector(0.2, 1.5, 100.0);
  const auto v = det.analyze(std::vector<RunResult>{
      ok("a", 10000), ok("b", 10000), ok("c", 10000 * ratio)});
  ASSERT_TRUE(v.analyzable);
  if (ratio >= 1.5) {
    EXPECT_EQ(v.per_run[2], OutlierKind::Slow) << "ratio " << ratio;
  } else if (ratio <= 1.0 / 1.5) {
    EXPECT_EQ(v.per_run[2], OutlierKind::Fast) << "ratio " << ratio;
  } else {
    EXPECT_EQ(v.per_run[2], OutlierKind::None) << "ratio " << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.666, 0.7, 0.9, 1.0,
                                           1.1, 1.3, 1.49, 1.5, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace ompfuzz::core
