// Tests for the lock models: analytic contention curves and the real
// concurrent lock implementations (mutual exclusion under actual threads).
#include <gtest/gtest.h>

#include <cmath>

#include <thread>
#include <vector>

#include "runtime/lock_models.hpp"

namespace ompfuzz::rt {
namespace {

// ------------------------------------------------------------ analytic -----

TEST(LockCurves, NoWaitWithOneThread) {
  for (auto alg : {LockAlgorithm::TestAndSet, LockAlgorithm::Ticket,
                   LockAlgorithm::Queuing, LockAlgorithm::FutexMutex}) {
    EXPECT_DOUBLE_EQ(wait_ns_per_entry(alg, 1, 100.0), 0.0);
  }
}

TEST(LockCurves, WaitGrowsWithThreads) {
  for (auto alg : {LockAlgorithm::TestAndSet, LockAlgorithm::Ticket,
                   LockAlgorithm::Queuing, LockAlgorithm::FutexMutex}) {
    double prev = 0.0;
    for (int threads : {2, 4, 8, 16, 32}) {
      const double w = wait_ns_per_entry(alg, threads, 50.0);
      EXPECT_GT(w, prev) << to_string(alg) << " T=" << threads;
      prev = w;
    }
  }
}

TEST(LockCurves, WaitGrowsWithHoldTime) {
  for (auto alg : {LockAlgorithm::TestAndSet, LockAlgorithm::Ticket,
                   LockAlgorithm::Queuing, LockAlgorithm::FutexMutex}) {
    EXPECT_GT(wait_ns_per_entry(alg, 16, 500.0),
              wait_ns_per_entry(alg, 16, 10.0));
  }
}

TEST(LockCurves, TestAndSetDegradesQuadratically) {
  // At zero hold time the TAS curve is pure cache-line contention: going
  // from 8 to 32 threads (~4x waiters) must cost ~16x, not ~4x.
  const double w8 = wait_ns_per_entry(LockAlgorithm::TestAndSet, 9, 0.0);
  const double w32 = wait_ns_per_entry(LockAlgorithm::TestAndSet, 33, 0.0);
  EXPECT_NEAR(w32 / w8, 16.0, 0.5);
}

TEST(LockCurves, FutexIsCheapestAmongVendorLocks) {
  // The vendor-modeled locks: GCC's futex mutex must undercut both Intel's
  // queuing lock and Clang's test-and-set at high contention (the mechanism
  // behind the GCC-fast outliers). The fair ticket spin is cheap too, but no
  // vendor profile uses it for criticals.
  const int t = 32;
  const double hold = 40.0;
  const double futex = wait_ns_per_entry(LockAlgorithm::FutexMutex, t, hold);
  EXPECT_LT(futex * 2.0, wait_ns_per_entry(LockAlgorithm::TestAndSet, t, hold));
  EXPECT_LT(futex * 2.0, wait_ns_per_entry(LockAlgorithm::Queuing, t, hold));
}

TEST(LockCurves, QueuingAndTasComparableAt32Threads) {
  // The calibration invariant behind the GCC-fast outliers: Intel (queuing)
  // and Clang (TAS) must stay alpha-comparable so they form the baseline.
  for (double hold : {10.0, 20.0, 40.0}) {
    const double tas = uncontended_ns(LockAlgorithm::TestAndSet) +
                       wait_ns_per_entry(LockAlgorithm::TestAndSet, 32, hold);
    const double queuing = uncontended_ns(LockAlgorithm::Queuing) +
                           wait_ns_per_entry(LockAlgorithm::Queuing, 32, hold);
    const double ratio = std::fabs(tas - queuing) / std::min(tas, queuing);
    EXPECT_LE(ratio, 0.2) << "hold " << hold;
  }
}

TEST(LockCurves, UncontendedCostsOrdered) {
  // Queuing locks pay queue-node setup even uncontended.
  EXPECT_GT(uncontended_ns(LockAlgorithm::Queuing),
            uncontended_ns(LockAlgorithm::TestAndSet));
}

// ------------------------------------------------------------ real locks ---

template <typename Lock>
void hammer(Lock& lock, int threads, int iterations, long& counter) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&lock, &counter, iterations] {
      for (int i = 0; i < iterations; ++i) {
        lock.lock();
        // Non-atomic increment: only correct if the lock really excludes.
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(RealLocks, SpinLockMutualExclusion) {
  SpinLock lock;
  long counter = 0;
  hammer(lock, 8, 5000, counter);
  EXPECT_EQ(counter, 8L * 5000);
}

TEST(RealLocks, TicketLockMutualExclusion) {
  TicketLock lock;
  long counter = 0;
  hammer(lock, 8, 5000, counter);
  EXPECT_EQ(counter, 8L * 5000);
}

TEST(RealLocks, QueueLockMutualExclusion) {
  QueueLock lock;
  long counter = 0;
  hammer(lock, 8, 5000, counter);
  EXPECT_EQ(counter, 8L * 5000);
}

TEST(RealLocks, TicketLockIsFifo) {
  // Acquire under contention and record the order; with a ticket lock the
  // acquisition order must match ticket order (strictly increasing serving).
  TicketLock lock;
  std::vector<int> order;
  std::vector<std::thread> workers;
  std::atomic<int> ready{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < 4) {
      }
      for (int i = 0; i < 1000; ++i) {
        lock.lock();
        order.push_back(t);
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(order.size(), 4000u);
}

TEST(RealLocks, SequentialReuse) {
  // Lock/unlock cycles from one thread: no deadlock, no state corruption.
  SpinLock s;
  TicketLock t;
  QueueLock q;
  for (int i = 0; i < 10000; ++i) {
    s.lock();
    s.unlock();
    t.lock();
    t.unlock();
    q.lock();
    q.unlock();
  }
  SUCCEED();
}

TEST(LockNames, ToStringCoverage) {
  EXPECT_STREQ(to_string(LockAlgorithm::TestAndSet), "test-and-set");
  EXPECT_STREQ(to_string(LockAlgorithm::Ticket), "ticket");
  EXPECT_STREQ(to_string(LockAlgorithm::Queuing), "queuing");
  EXPECT_STREQ(to_string(LockAlgorithm::FutexMutex), "futex-mutex");
}

}  // namespace
}  // namespace ompfuzz::rt
