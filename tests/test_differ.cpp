// Tests for ULP/NaN-aware output comparison and majority divergence analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/differ.hpp"

namespace ompfuzz::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(UlpDistance, AdjacentDoublesAreOneApart) {
  const double x = 1.0;
  const double next = std::nextafter(x, 2.0);
  EXPECT_EQ(ulp_distance(x, next), 1);
  EXPECT_EQ(ulp_distance(next, x), 1);
}

TEST(UlpDistance, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(ulp_distance(3.14, 3.14), 0);
}

TEST(UlpDistance, SignedZerosAreZeroApart) {
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0);
}

TEST(UlpDistance, AcrossZeroCountsBothSides) {
  const double tiny = 5e-324;  // smallest subnormal
  EXPECT_EQ(ulp_distance(tiny, -tiny), 2);
}

TEST(UlpDistance, KUlpsApart) {
  double x = 2.0;
  double y = x;
  for (int i = 0; i < 10; ++i) y = std::nextafter(y, 3.0);
  EXPECT_EQ(ulp_distance(x, y), 10);
}

TEST(Compare, BitwiseEqual) {
  const auto c = compare_outputs(1.5, 1.5);
  EXPECT_TRUE(c.bitwise_equal);
  EXPECT_TRUE(c.equivalent);
  EXPECT_EQ(c.ulp_distance, 0);
}

TEST(Compare, BothNanAreEquivalent) {
  const auto c = compare_outputs(kNaN, -kNaN);
  EXPECT_TRUE(c.both_nan);
  EXPECT_TRUE(c.equivalent);
}

TEST(Compare, NanVsNumberDiverges) {
  EXPECT_FALSE(compare_outputs(kNaN, 1.0).equivalent);
  EXPECT_FALSE(compare_outputs(1.0, kNaN).equivalent);
}

TEST(Compare, InfinitySignMatters) {
  EXPECT_TRUE(compare_outputs(kInf, kInf).equivalent);
  EXPECT_FALSE(compare_outputs(kInf, -kInf).equivalent);
  EXPECT_FALSE(compare_outputs(kInf, 1e308).equivalent);
}

TEST(Compare, WithinUlpToleranceIsEquivalent) {
  DiffTolerance tol;
  tol.max_ulps = 4;
  tol.max_rel_error = 0.0;
  double y = 1.0;
  for (int i = 0; i < 4; ++i) y = std::nextafter(y, 2.0);
  EXPECT_TRUE(compare_outputs(1.0, y, tol).equivalent);
  y = std::nextafter(y, 2.0);
  EXPECT_FALSE(compare_outputs(1.0, y, tol).equivalent);
}

TEST(Compare, RelativeToleranceFallback) {
  DiffTolerance tol;
  tol.max_ulps = 0;
  tol.max_rel_error = 1e-6;
  EXPECT_TRUE(compare_outputs(1000000.0, 1000000.5, tol).equivalent);
  EXPECT_FALSE(compare_outputs(1000000.0, 1000010.0, tol).equivalent);
}

TEST(Compare, ExactToleranceIsBitwise) {
  DiffTolerance exact;
  exact.max_ulps = 0;
  exact.max_rel_error = 0.0;
  EXPECT_TRUE(compare_outputs(2.0, 2.0, exact).equivalent);
  EXPECT_FALSE(compare_outputs(2.0, std::nextafter(2.0, 3.0), exact).equivalent);
  // +0 vs -0: 0 ulps apart -> equivalent even bitwise-wise by ULP metric.
  EXPECT_TRUE(compare_outputs(0.0, -0.0, exact).equivalent);
}

// ------------------------------------------------------------ divergence ---

TEST(Divergence, AllEqualIsConsensus) {
  const std::vector<double> outs = {1.5, 1.5, 1.5};
  const auto d = analyze_outputs(outs);
  EXPECT_TRUE(d.all_equivalent);
  EXPECT_EQ(d.majority_size, 3u);
  for (bool x : d.diverges) EXPECT_FALSE(x);
}

TEST(Divergence, SingleDissenterFlagged) {
  const std::vector<double> outs = {1.5, 1.5, 2.5};
  const auto d = analyze_outputs(outs);
  EXPECT_FALSE(d.all_equivalent);
  EXPECT_EQ(d.majority_size, 2u);
  EXPECT_FALSE(d.diverges[0]);
  EXPECT_FALSE(d.diverges[1]);
  EXPECT_TRUE(d.diverges[2]);
}

TEST(Divergence, NanConsensus) {
  const std::vector<double> outs = {kNaN, kNaN, 3.0};
  const auto d = analyze_outputs(outs);
  EXPECT_EQ(d.majority_size, 2u);
  EXPECT_TRUE(d.diverges[2]);
}

TEST(Divergence, AllDistinctPicksFirstMaximal) {
  const std::vector<double> outs = {1.0, 2.0, 4.0};
  const auto d = analyze_outputs(outs);
  EXPECT_EQ(d.majority_size, 1u);
  EXPECT_FALSE(d.all_equivalent);
}

TEST(Divergence, EmptyAndSingleton) {
  EXPECT_TRUE(analyze_outputs({}).all_equivalent);
  const std::vector<double> one = {7.0};
  const auto d = analyze_outputs(one);
  EXPECT_TRUE(d.all_equivalent);
  EXPECT_FALSE(d.diverges[0]);
}

TEST(Divergence, RespectsTolerance) {
  DiffTolerance exact;
  exact.max_ulps = 0;
  exact.max_rel_error = 0.0;
  const double base = 1976157359951.6069;
  const std::vector<double> outs = {std::nextafter(base, 2e12), base, base};
  const auto strict = analyze_outputs(outs, exact);
  EXPECT_TRUE(strict.diverges[0]);
  const auto lenient = analyze_outputs(outs);  // default 16-ulp budget
  EXPECT_FALSE(lenient.diverges[0]);
}

}  // namespace
}  // namespace ompfuzz::core
