// Unit tests for the telemetry subsystem: metrics registry semantics, span
// tracer output, cross-thread snapshot determinism, and the disabled-path
// zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/campaign_metrics.hpp"
#include "harness/sim_executor.hpp"
#include "support/config.hpp"
#include "support/fault_injection.hpp"
#include "support/telemetry.hpp"

namespace ompfuzz {
namespace {

using telemetry::MetricKind;
using telemetry::MetricsSnapshot;
using telemetry::Registry;
using telemetry::ScopedSpan;
using telemetry::Tracer;

// Global-new instrumentation for the zero-allocation test. Relaxed atomics:
// the test only reads the count from the allocating thread itself.
std::atomic<std::uint64_t> g_allocations{0};

std::string temp_trace_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += stem;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ----------------------------------------------------------- Registry -----

TEST(TelemetryRegistry, CounterAddReturnsPreviousValue) {
  auto& c = Registry::global().counter("test.ordinal");
  c.reset();
  EXPECT_EQ(c.add(), 0u);  // the returned ordinal is load-bearing: the fault
  EXPECT_EQ(c.add(), 1u);  // injector keys its decision hash on it
  EXPECT_EQ(c.add(3), 2u);
  EXPECT_EQ(c.value(), 5u);
}

TEST(TelemetryRegistry, SameNameReturnsSameMetric) {
  auto& a = Registry::global().counter("test.same");
  auto& b = Registry::global().counter("test.same");
  EXPECT_EQ(&a, &b);
}

TEST(TelemetryRegistry, ReferencesStayStableAcrossRegistrations) {
  auto& first = Registry::global().counter("test.stable");
  first.reset();
  first.add(7);
  // Force registry growth; the earlier reference must keep working.
  for (int i = 0; i < 64; ++i) {
    Registry::global().counter("test.stable.filler" + std::to_string(i));
  }
  EXPECT_EQ(first.value(), 7u);
  EXPECT_EQ(&first, &Registry::global().counter("test.stable"));
}

TEST(TelemetryRegistry, GaugeSetAndAdd) {
  auto& g = Registry::global().gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-1);
  EXPECT_EQ(g.value(), -1);
}

TEST(TelemetryRegistry, HistogramBucketsByBitWidth) {
  auto& h = Registry::global().histogram("test.hist");
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3
  h.record(255);  // bucket 8
  h.record(256);  // bucket 9
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(8), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(TelemetryRegistry, SnapshotSortedAndQueryable) {
  Registry::global().counter("test.snap.b").reset();
  Registry::global().counter("test.snap.a").add(0);
  const MetricsSnapshot snap = Registry::global().snapshot();
  const auto& samples = snap.samples();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  EXPECT_NE(snap.find("test.snap.a"), nullptr);
  EXPECT_EQ(snap.find("test.snap.nonexistent"), nullptr);
  EXPECT_EQ(snap.counter("test.snap.nonexistent"), 0u);
}

TEST(TelemetryRegistry, DeltaFromSubtractsCountersKeepsGauges) {
  auto& c = Registry::global().counter("test.delta.c");
  auto& g = Registry::global().gauge("test.delta.g");
  auto& h = Registry::global().histogram("test.delta.h");
  c.reset();
  c.add(5);
  g.set(100);
  h.record(8);
  const MetricsSnapshot base = Registry::global().snapshot();
  c.add(3);
  g.set(42);
  h.record(8);
  h.record(9);
  const MetricsSnapshot delta =
      Registry::global().snapshot().delta_from(base);
  EXPECT_EQ(delta.counter("test.delta.c"), 3u);
  EXPECT_EQ(delta.gauge("test.delta.g"), 42);  // gauges stay instantaneous
  const auto* hs = delta.find("test.delta.h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->counter, 2u);
  EXPECT_EQ(hs->sum, 17u);
  ASSERT_GT(hs->buckets.size(), 4u);
  EXPECT_EQ(hs->buckets[4], 2u);  // 8 and 9 both have bit width 4
}

// Deterministic counters must reach identical totals regardless of worker
// interleaving — the registry cannot introduce nondeterminism of its own.
TEST(TelemetryRegistry, SnapshotDeltaDeterministicAcrossThreadCounts) {
  const auto run_with_threads = [](int threads) {
    auto& c = Registry::global().counter("test.det.work");
    auto& h = Registry::global().histogram("test.det.lat");
    const MetricsSnapshot base = Registry::global().snapshot();
    constexpr int kItems = 1000;
    std::atomic<int> next{0};
    const auto worker = [&] {
      for (int i = next.fetch_add(1); i < kItems; i = next.fetch_add(1)) {
        c.add(static_cast<std::uint64_t>(i % 7));
        h.record(static_cast<std::uint64_t>(i));
      }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    return Registry::global().snapshot().delta_from(base);
  };

  const MetricsSnapshot one = run_with_threads(1);
  const MetricsSnapshot four = run_with_threads(4);
  EXPECT_EQ(one.counter("test.det.work"), four.counter("test.det.work"));
  const auto* h1 = one.find("test.det.lat");
  const auto* h4 = four.find("test.det.lat");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h4, nullptr);
  EXPECT_EQ(h1->counter, h4->counter);
  EXPECT_EQ(h1->sum, h4->sum);
  EXPECT_EQ(h1->buckets, h4->buckets);
}

// The ISSUE-level determinism contract: for a seed-fixed campaign, every
// deterministic registry counter lands on the same per-run delta whether the
// campaign ran on one worker or four. Timing metrics (analysis_nanos, the
// unit_micros sum) are wall-clock and excluded; the unit_micros COUNT is one
// record per sub-shard unit and must match.
TEST(TelemetryRegistry, CampaignRunMetricsDeterministicAcrossThreadCounts) {
  const auto run_with_threads = [](int threads) {
    CampaignConfig cfg;
    cfg.generator.max_loop_trip_count = 40;  // keep interpretation fast
    cfg.num_programs = 8;
    cfg.inputs_per_program = 2;
    cfg.seed = 0xDEC0DE;
    cfg.threads = threads;
    harness::SimExecutor exec{harness::SimExecutorOptions{}};
    harness::Campaign campaign(cfg, exec);
    (void)campaign.run();
    return campaign.run_metrics();
  };

  const MetricsSnapshot one = run_with_threads(1);
  const MetricsSnapshot four = run_with_threads(4);
  for (const char* name :
       {"scheduler.units", "scheduler.batches", "scheduler.stolen_units",
        "campaign.retried_triples", "campaign.retry_rounds",
        "campaign.failover_units", "campaign.fabricated_units",
        "campaign.journal_failures", "store.hits", "store.misses",
        "store.puts"}) {
    EXPECT_EQ(one.counter(name), four.counter(name)) << name;
  }
  EXPECT_EQ(one.gauge("campaign.units_total"), 8);
  EXPECT_EQ(one.gauge("campaign.units_done"), 8);
  EXPECT_EQ(four.gauge("campaign.units_total"), 8);
  EXPECT_EQ(four.gauge("campaign.units_done"), 8);
  const auto* h1 = one.find("campaign.unit_micros");
  const auto* h4 = four.find("campaign.unit_micros");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h4, nullptr);
  EXPECT_EQ(h1->counter, 8u);
  EXPECT_EQ(h4->counter, 8u);
}

TEST(TelemetryRegistry, MetricsJsonRendersEverySection) {
  Registry::global().counter("test.json.c").add(0);
  Registry::global().gauge("test.json.g").set(5);
  Registry::global().histogram("test.json.h").record(3);
  const std::string json =
      render_metrics_json(Registry::global().snapshot());
  EXPECT_NE(json.find("\"schema\":\"ompfuzz-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.g\":5"), std::string::npos);
}

// -------------------------------------------------------------- Tracer -----

TEST(TelemetryTracer, SpansAndInstantsProduceWellFormedTrace) {
  const std::string path = temp_trace_path("ompfuzz_test_trace.json");
  Tracer::instance().start(path);
  {
    ScopedSpan span("compile", "compile");
    ASSERT_TRUE(span.active());
    span.arg("fingerprint", telemetry::hex_fingerprint(0xabcdef));
    span.arg("backend", 2);
  }
  Tracer::instance().instant("steal", "steal");
  ASSERT_TRUE(Tracer::instance().stop());

  const std::string trace = slurp(path);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"compile\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"steal\""), std::string::npos);
  EXPECT_NE(trace.find("\"fingerprint\":\"0000000000abcdef\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"backend\":2"), std::string::npos);
  std::remove(path.c_str());
}

// Tracing must stay well-formed when every fault site is firing: spans around
// injected failures still close, and the file still parses.
TEST(TelemetryTracer, TraceWellFormedUnderFullFaultInjection) {
  const std::string path = temp_trace_path("ompfuzz_test_trace_faults.json");
  FaultConfig config;
  config.enabled = true;
  config.rate = 1.0;
  config.seed = 7;
  Tracer::instance().start(path);
  {
    ScopedFaultInjection faults(config);
    for (int i = 0; i < 100; ++i) {
      ScopedSpan span("store", "store_put");
      if (inject_fault(FaultSite::StoreWrite)) {
        if (span.active()) span.arg("fault", "store_write");
      }
    }
  }
  ASSERT_TRUE(Tracer::instance().stop());
  const std::string trace = slurp(path);
  // Every span closed and carried the injected-fault arg.
  EXPECT_NE(trace.find("\"fault\":\"store_write\""), std::string::npos);
  std::size_t events = 0;
  for (std::size_t at = trace.find("\"ph\":\"X\""); at != std::string::npos;
       at = trace.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 100u);
  // Braces balance — cheap structural well-formedness check; the full JSON
  // schema check lives in tools/trace_summarize.py.
  std::int64_t depth = 0;
  for (char ch : trace) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(TelemetryTracer, StopWithoutStartIsNoop) {
  EXPECT_TRUE(Tracer::instance().stop());
}

// ----------------------------------------------------- disabled path -------

// The always-on promise: with tracing off, a hot-path increment plus a span
// construct/destruct performs zero heap allocations.
TEST(TelemetryDisabledPath, HotIncrementAndSpanAllocateNothing) {
  ASSERT_FALSE(Tracer::instance().active());
  auto& c = Registry::global().counter("test.noalloc");  // registration warm
  c.add();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c.add();
    ScopedSpan span("run-batch", "unit");
    if (span.active()) span.arg("never", "rendered");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace ompfuzz

void* operator new(std::size_t size) {
  ompfuzz::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC pairs these replaced deallocators against the implicit built-in new
// and warns about the free(); the pairing is in fact consistent with the
// malloc-backed replacement above.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
