// Unit tests for the AST: construction invariants, clone/equality/hash,
// program validation, and structural feature analysis.
#include <gtest/gtest.h>

#include "ast/program.hpp"
#include "support/error.hpp"

namespace ompfuzz::ast {
namespace {

// Builds a minimal valid program skeleton: comp + one of each param kind.
struct Fixture {
  Program prog;
  VarId comp, n, x, arr;

  Fixture() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    n = prog.add_var({"var_1", VarKind::IntScalar, VarRole::Param, FpWidth::F64, 0});
    x = prog.add_var({"var_2", VarKind::FpScalar, VarRole::Param, FpWidth::F32, 0});
    arr = prog.add_var({"var_3", VarKind::FpArray, VarRole::Param, FpWidth::F64, 10});
    prog.add_param(n);
    prog.add_param(x);
    prog.add_param(arr);
  }
};

// ------------------------------------------------------------- expressions -

TEST(Expr, FactoriesSetKinds) {
  EXPECT_EQ(Expr::fp_const(1.5)->kind(), Expr::Kind::FpConst);
  EXPECT_EQ(Expr::int_const(3)->kind(), Expr::Kind::IntConst);
  EXPECT_EQ(Expr::var(0)->kind(), Expr::Kind::VarRef);
  EXPECT_EQ(Expr::thread_id()->kind(), Expr::Kind::ThreadId);
}

TEST(Expr, AccessorsCheckKind) {
  const auto c = Expr::fp_const(2.0);
  EXPECT_DOUBLE_EQ(c->fp_value(), 2.0);
  EXPECT_THROW((void)c->int_value(), Error);
  EXPECT_THROW((void)c->var_id(), Error);
  EXPECT_THROW((void)c->lhs(), Error);
}

TEST(Expr, FactoriesRejectNulls) {
  EXPECT_THROW((void)Expr::array(0, nullptr), Error);
  EXPECT_THROW((void)Expr::binary(BinOp::Add, nullptr, Expr::fp_const(1)), Error);
  EXPECT_THROW((void)Expr::call(MathFunc::Sin, nullptr), Error);
  EXPECT_THROW((void)Expr::var(kInvalidVar), Error);
}

TEST(Expr, CloneIsDeepAndEqual) {
  auto e = Expr::binary(
      BinOp::Mul,
      Expr::call(MathFunc::Sin, Expr::var(1)),
      Expr::array(2, Expr::binary(BinOp::Mod, Expr::var(3), Expr::int_const(10))),
      /*parenthesized=*/true);
  const auto copy = e->clone();
  EXPECT_TRUE(e->equals(*copy));
  EXPECT_EQ(e->hash(), copy->hash());
  EXPECT_NE(e.get(), copy.get());
}

TEST(Expr, EqualityDistinguishesStructure) {
  const auto a = Expr::binary(BinOp::Add, Expr::var(1), Expr::var(2));
  const auto b = Expr::binary(BinOp::Add, Expr::var(2), Expr::var(1));
  const auto c = Expr::binary(BinOp::Sub, Expr::var(1), Expr::var(2));
  EXPECT_FALSE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_NE(a->hash(), c->hash());
}

TEST(Expr, EqualityIsBitwiseOnConstants) {
  const auto pos = Expr::fp_const(0.0);
  const auto neg = Expr::fp_const(-0.0);
  EXPECT_FALSE(pos->equals(*neg));  // +0.0 and -0.0 are distinct literals
}

TEST(Expr, WalkVisitsAllNodes) {
  const auto e = Expr::binary(BinOp::Add, Expr::var(1),
                              Expr::call(MathFunc::Exp, Expr::fp_const(1.0)));
  EXPECT_EQ(e->size(), 4u);
  int count = 0;
  e->walk([&count](const Expr&) { ++count; });
  EXPECT_EQ(count, 4);
}

TEST(BoolExprTest, CloneAndHash) {
  BoolExpr b;
  b.lhs = 3;
  b.op = BoolOp::Ge;
  b.rhs = Expr::fp_const(1.25);
  const BoolExpr copy = b.clone();
  EXPECT_EQ(copy.lhs, b.lhs);
  EXPECT_EQ(copy.op, b.op);
  EXPECT_EQ(copy.hash(), b.hash());
}

// ------------------------------------------------------------- statements --

TEST(StmtTest, FactoriesEnforceInvariants) {
  EXPECT_THROW((void)Stmt::assign(LValue{kInvalidVar, nullptr}, AssignOp::Assign,
                                  Expr::fp_const(1)),
               Error);
  EXPECT_THROW((void)Stmt::decl(1, nullptr), Error);
  EXPECT_THROW((void)Stmt::for_loop(kInvalidVar, Expr::int_const(1), {}, false),
               Error);
  OmpClauses bad;
  bad.num_threads = 0;
  EXPECT_THROW((void)Stmt::omp_parallel(std::move(bad), {}), Error);
}

TEST(StmtTest, CloneDeepCopiesNestedBlocks) {
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{0, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  auto loop = Stmt::for_loop(1, Expr::int_const(5), std::move(body), true);
  const auto copy = loop->clone();
  EXPECT_EQ(copy->kind, Stmt::Kind::For);
  EXPECT_TRUE(copy->omp_for);
  ASSERT_EQ(copy->body.size(), 1u);
  EXPECT_NE(copy->body.stmts[0].get(), loop->body.stmts[0].get());
}

TEST(StmtTest, WalkStmtsReachesNestedStatements) {
  Block inner;
  inner.stmts.push_back(Stmt::assign(LValue{0, nullptr}, AssignOp::Assign,
                                     Expr::fp_const(0.0)));
  Block outer;
  BoolExpr cond;
  cond.lhs = 0;
  cond.rhs = Expr::fp_const(1.0);
  outer.stmts.push_back(Stmt::if_block(std::move(cond), std::move(inner)));
  int statements = 0;
  walk_stmts(outer, [&](const Stmt&) { ++statements; });
  EXPECT_EQ(statements, 2);  // the if and its nested assignment
}

TEST(StmtTest, WalkExprsCoversGuardsBoundsAndSubscripts) {
  Fixture f;
  Block block;
  block.stmts.push_back(Stmt::assign(
      LValue{f.arr, Expr::int_const(3)}, AssignOp::Assign, Expr::var(f.x)));
  BoolExpr cond;
  cond.lhs = f.x;
  cond.rhs = Expr::fp_const(2.0);
  Block then;
  then.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.x)));
  block.stmts.push_back(Stmt::if_block(std::move(cond), std::move(then)));
  int exprs = 0;
  walk_exprs(block, [&](const Expr&) { ++exprs; });
  // arr subscript const + rhs var + guard rhs + comp rhs = 4 nodes.
  EXPECT_EQ(exprs, 4);
}

// ------------------------------------------------------------- program -----

TEST(ProgramTest, DuplicateNamesRejected) {
  Program p;
  p.add_var({"x", VarKind::FpScalar, VarRole::Temp, FpWidth::F64, 0});
  EXPECT_THROW(p.add_var({"x", VarKind::FpScalar, VarRole::Temp, FpWidth::F64, 0}),
               Error);
}

TEST(ProgramTest, SignatureMapsKindsAndWidths) {
  Fixture f;
  const auto sig = f.prog.signature();
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_EQ(sig[0].kind, fp::ParamKind::Int);
  EXPECT_EQ(sig[1].kind, fp::ParamKind::Scalar);
  EXPECT_EQ(sig[1].width, fp::FpWidth::F32);
  EXPECT_EQ(sig[2].kind, fp::ParamKind::Array);
  EXPECT_EQ(sig[2].array_size, 10);
}

TEST(ProgramTest, ValidateAcceptsWellFormedBody) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign, Expr::var(f.x)));
  EXPECT_NO_THROW(f.prog.validate());
}

TEST(ProgramTest, ValidateRejectsArrayUsedAsScalar) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign, Expr::var(f.arr)));
  EXPECT_THROW(f.prog.validate(), Error);
}

TEST(ProgramTest, ValidateRejectsScalarSubscript) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign,
      Expr::array(f.x, Expr::int_const(0))));
  EXPECT_THROW(f.prog.validate(), Error);
}

TEST(ProgramTest, ValidateRejectsAssignmentToLoopIndex) {
  Fixture f;
  const VarId i = f.prog.add_var(
      {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  Block body;
  body.stmts.push_back(
      Stmt::assign(LValue{i, nullptr}, AssignOp::Assign, Expr::int_const(0)));
  f.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::int_const(3), std::move(body), false));
  EXPECT_THROW(f.prog.validate(), Error);
}

TEST(ProgramTest, ValidateRejectsCompInClauses) {
  Fixture f;
  OmpClauses clauses;
  clauses.privates.push_back(f.comp);
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{f.x, nullptr}, AssignOp::Assign,
                                    Expr::fp_const(0.0)));
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(body)));
  EXPECT_THROW(f.prog.validate(), Error);
}

TEST(ProgramTest, ValidateRejectsNonIntLoopBound) {
  Fixture f;
  const VarId i = f.prog.add_var(
      {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  f.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::var(f.x), std::move(body), false));
  EXPECT_THROW(f.prog.validate(), Error);
}

TEST(ProgramTest, CloneAndFingerprintStability) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign, Expr::var(f.x)));
  const Program copy = f.prog.clone();
  EXPECT_EQ(copy.fingerprint(), f.prog.fingerprint());
  EXPECT_EQ(copy.var_count(), f.prog.var_count());
}

TEST(ProgramTest, FingerprintSensitiveToBody) {
  Fixture f;
  const auto before = f.prog.fingerprint();
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign, Expr::var(f.x)));
  EXPECT_NE(f.prog.fingerprint(), before);
}

// ------------------------------------------------------------- analysis ----

TEST(Analysis, CountsConstructs) {
  Fixture f;
  // for { parallel { x=0; omp for { critical { comp += 1 } } } }
  Block crit_body;
  crit_body.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr},
                                         AssignOp::AddAssign, Expr::fp_const(1.0)));
  Block for_body;
  for_body.stmts.push_back(Stmt::omp_critical(std::move(crit_body)));
  const VarId i2 = f.prog.add_var(
      {"i_2", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  Block region_body;
  region_body.stmts.push_back(Stmt::assign(LValue{f.x, nullptr}, AssignOp::Assign,
                                           Expr::fp_const(0.0)));
  region_body.stmts.push_back(
      Stmt::for_loop(i2, Expr::int_const(8), std::move(for_body), /*omp_for=*/true));
  OmpClauses clauses;
  clauses.privates.push_back(f.x);
  clauses.reduction = ReductionOp::Sum;
  Block outer_body;
  outer_body.stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region_body)));
  const VarId i1 = f.prog.add_var(
      {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  f.prog.body().stmts.push_back(
      Stmt::for_loop(i1, Expr::int_const(4), std::move(outer_body), false));

  const ProgramFeatures feat = analyze(f.prog);
  EXPECT_EQ(feat.num_parallel_regions, 1);
  EXPECT_EQ(feat.num_omp_for_loops, 1);
  EXPECT_EQ(feat.num_critical_sections, 1);
  EXPECT_EQ(feat.num_reductions, 1);
  EXPECT_EQ(feat.num_serial_loops, 1);
  EXPECT_TRUE(feat.has_parallel_inside_serial_loop);
  EXPECT_TRUE(feat.has_critical_in_parallel_loop);
  EXPECT_EQ(feat.static_loop_iterations, 12);  // 4 + 8
  EXPECT_EQ(feat.num_arrays, 1);
}

TEST(Analysis, RegionResetsSerialLoopContext) {
  Fixture f;
  // parallel { x = 0; serial-for { assign } }: the serial loop inside the
  // region must NOT flag has_parallel_inside_serial_loop.
  Block for_body;
  for_body.stmts.push_back(Stmt::assign(LValue{f.x, nullptr}, AssignOp::Assign,
                                        Expr::fp_const(1.0)));
  const VarId i = f.prog.add_var(
      {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  Block region;
  region.stmts.push_back(Stmt::assign(LValue{f.x, nullptr}, AssignOp::Assign,
                                      Expr::fp_const(0.0)));
  region.stmts.push_back(
      Stmt::for_loop(i, Expr::int_const(3), std::move(for_body), false));
  OmpClauses clauses;
  clauses.privates.push_back(f.x);
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));

  const ProgramFeatures feat = analyze(f.prog);
  EXPECT_FALSE(feat.has_parallel_inside_serial_loop);
  EXPECT_FALSE(feat.has_critical_in_parallel_loop);
  EXPECT_EQ(feat.num_serial_loops, 1);
}

TEST(Analysis, CountsMathCallsAndWidths) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.comp, nullptr}, AssignOp::AddAssign,
      Expr::call(MathFunc::Sqrt, Expr::call(MathFunc::Fabs, Expr::var(f.x)))));
  const ProgramFeatures feat = analyze(f.prog);
  EXPECT_EQ(feat.num_math_calls, 2);
  EXPECT_EQ(feat.num_float_vars, 1);   // var_2
  EXPECT_EQ(feat.num_double_vars, 1);  // comp
}

TEST(Types, ToStringCoverage) {
  EXPECT_STREQ(to_string(BinOp::Mod), "%");
  EXPECT_STREQ(to_string(BoolOp::Ne), "!=");
  EXPECT_STREQ(to_string(AssignOp::DivAssign), "/=");
  EXPECT_STREQ(to_string(ReductionOp::Prod), "*");
  EXPECT_STREQ(to_string(MathFunc::Atan), "atan");
}

}  // namespace
}  // namespace ompfuzz::ast
