// Determinism tests for the sharded campaign engine: for a fixed seed, a
// campaign must produce bit-identical results for every thread count, and
// the thread-pool substrate must behave (cover every index, propagate
// exceptions, resolve the 0 = hardware-concurrency knob).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/sim_executor.hpp"
#include "support/config.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace ompfuzz {
namespace {

using harness::Campaign;
using harness::CampaignResult;
using harness::SimExecutor;
using harness::SimExecutorOptions;
using harness::TestOutcome;

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(resolve_thread_count(0), hw == 0 ? 1u : static_cast<std::size_t>(hw));
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr int kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](int) { FAIL() << "must not be called"; });
  parallel_for(pool, -3, [](int) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(pool, 20,
                   [&](int i) {
                     if (i == 7) throw std::runtime_error("boom");
                     completed++;
                   }),
      std::runtime_error);
  // Every non-throwing iteration still ran.
  EXPECT_EQ(completed, 19);
}

// ------------------------------------------------------------- campaign ----

CampaignConfig small_config(int threads) {
  CampaignConfig cfg;
  cfg.generator.max_loop_trip_count = 40;  // keep interpretation fast
  cfg.num_programs = 10;
  cfg.inputs_per_program = 2;
  cfg.seed = 0xDEC0DE;
  cfg.threads = threads;
  return cfg;
}

CampaignResult run_campaign(int threads) {
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor exec(opt);
  Campaign campaign(small_config(threads), exec);
  return campaign.run();
}

/// Bitwise double equality that treats NaN as equal to itself (generated
/// programs legitimately compute NaN on extreme inputs).
void expect_bits_eq(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.impl_names, b.impl_names);
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.total_tests, b.total_tests);
  EXPECT_EQ(a.analyzable_tests, b.analyzable_tests);
  EXPECT_EQ(a.skipped_runs, b.skipped_runs);
  EXPECT_EQ(a.regenerated_programs, b.regenerated_programs);

  ASSERT_EQ(a.per_impl.size(), b.per_impl.size());
  for (const auto& [name, counts] : a.per_impl) {
    const auto it = b.per_impl.find(name);
    ASSERT_NE(it, b.per_impl.end()) << name;
    EXPECT_EQ(counts.slow, it->second.slow) << name;
    EXPECT_EQ(counts.fast, it->second.fast) << name;
    EXPECT_EQ(counts.crash, it->second.crash) << name;
    EXPECT_EQ(counts.hang, it->second.hang) << name;
    EXPECT_EQ(counts.fast_with_divergence, it->second.fast_with_divergence) << name;
  }

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t t = 0; t < a.outcomes.size(); ++t) {
    const TestOutcome& oa = a.outcomes[t];
    const TestOutcome& ob = b.outcomes[t];
    EXPECT_EQ(oa.program_index, ob.program_index);
    EXPECT_EQ(oa.input_index, ob.input_index);
    EXPECT_EQ(oa.program_name, ob.program_name);
    EXPECT_EQ(oa.input_text, ob.input_text);

    ASSERT_EQ(oa.runs.size(), ob.runs.size());
    for (std::size_t r = 0; r < oa.runs.size(); ++r) {
      EXPECT_EQ(oa.runs[r].impl, ob.runs[r].impl);
      EXPECT_EQ(oa.runs[r].status, ob.runs[r].status);
      expect_bits_eq(oa.runs[r].time_us, ob.runs[r].time_us);
      expect_bits_eq(oa.runs[r].output, ob.runs[r].output);
    }

    EXPECT_EQ(oa.verdict.analyzable, ob.verdict.analyzable);
    EXPECT_EQ(oa.verdict.filter_reason, ob.verdict.filter_reason);
    expect_bits_eq(oa.verdict.midpoint_us, ob.verdict.midpoint_us);
    EXPECT_EQ(oa.verdict.comparable_group, ob.verdict.comparable_group);
    EXPECT_EQ(oa.verdict.per_run, ob.verdict.per_run);

    EXPECT_EQ(oa.divergence.all_equivalent, ob.divergence.all_equivalent);
    EXPECT_EQ(oa.divergence.majority_size, ob.divergence.majority_size);
    EXPECT_EQ(oa.divergence.diverges, ob.divergence.diverges);
  }

  // The static_analysis block (including the interval-precision counters) is
  // re-derived at merge time from the journaled regeneration counts, so it
  // must be a pure function of the config — identical for every split.
  EXPECT_EQ(a.analysis.programs_checked, b.analysis.programs_checked);
  EXPECT_EQ(a.analysis.programs_filtered, b.analysis.programs_filtered);
  EXPECT_EQ(a.analysis.findings_by_kind, b.analysis.findings_by_kind);
  EXPECT_EQ(a.analysis.interval_rescued_drafts,
            b.analysis.interval_rescued_drafts);
  EXPECT_EQ(a.analysis.interval_disjoint_pairs,
            b.analysis.interval_disjoint_pairs);
  EXPECT_EQ(a.analysis.interval_mod_rewrites, b.analysis.interval_mod_rewrites);
}

TEST(CampaignParallel, FourThreadsMatchSerialExactly) {
  const CampaignResult serial = run_campaign(1);
  const CampaignResult parallel = run_campaign(4);
  expect_identical(serial, parallel);
}

TEST(CampaignParallel, HardwareConcurrencyMatchesSerial) {
  // threads = 0 resolves to hardware concurrency; the result must still be
  // identical to a serial run.
  const CampaignResult serial = run_campaign(1);
  const CampaignResult hw = run_campaign(0);
  expect_identical(serial, hw);
}

TEST(CampaignParallel, RangeidxIntervalCountersFireAndSplitInvariantly) {
  // On a rangeidx stream the accepted drafts carry banked `tid + k*T` and
  // `iv % size` subscripts the affine baseline flags as racy; the interval
  // counters must actually fire there, and must stay identical across
  // thread counts (expect_identical now covers the analysis block).
  const auto run = [](int threads) {
    CampaignConfig cfg = small_config(threads);
    cfg.generator.array_size = 64;  // banks >= 2 under 32-thread regions
    cfg.generator.max_loop_trip_count = 12;
    cfg.generator.enable_features("rangeidx");
    SimExecutorOptions opt;
    opt.num_threads = 8;
    SimExecutor exec(opt);
    Campaign campaign(cfg, exec);
    return campaign.run();
  };
  const CampaignResult serial = run(1);
  const CampaignResult parallel = run(4);
  expect_identical(serial, parallel);

  EXPECT_GT(serial.analysis.interval_rescued_drafts, 0);
  EXPECT_GT(serial.analysis.interval_disjoint_pairs, 0u);
  EXPECT_GT(serial.analysis.interval_mod_rewrites, 0u);
  EXPECT_LE(serial.analysis.interval_rescued_drafts,
            serial.analysis.programs_checked);

  // The default stream draws nothing from the rangeidx feature, so its
  // precision counters stay zero — the delta is attributable to the gate.
  const CampaignResult plain = run_campaign(1);
  EXPECT_EQ(plain.analysis.interval_rescued_drafts, 0);
}

TEST(CampaignParallel, OutcomesStayInProgramOrder) {
  const CampaignResult result = run_campaign(4);
  const auto& cfg = small_config(4);
  ASSERT_EQ(result.outcomes.size(),
            static_cast<std::size_t>(cfg.num_programs * cfg.inputs_per_program));
  for (std::size_t t = 0; t < result.outcomes.size(); ++t) {
    EXPECT_EQ(result.outcomes[t].program_index,
              static_cast<int>(t) / cfg.inputs_per_program);
    EXPECT_EQ(result.outcomes[t].input_index,
              static_cast<int>(t) % cfg.inputs_per_program);
  }
}

TEST(CampaignParallel, ProgressReachesTotalAndStaysMonotonic) {
  SimExecutorOptions opt;
  opt.num_threads = 8;
  SimExecutor exec(opt);
  Campaign campaign(small_config(3), exec);
  std::mutex mutex;
  int last_done = 0;
  int calls = 0;
  const CampaignResult result = campaign.run([&](int done, int total) {
    const std::lock_guard<std::mutex> lock(mutex);
    EXPECT_GT(done, last_done);
    EXPECT_EQ(total, 10);
    last_done = done;
    ++calls;
  });
  EXPECT_EQ(last_done, 10);
  EXPECT_EQ(calls, 10);
  EXPECT_EQ(result.total_tests, 20);
}

TEST(CampaignParallel, ThreadsKnobParsesAndValidates) {
  const ConfigFile file = ConfigFile::parse("[campaign]\nthreads = 4\n");
  EXPECT_EQ(CampaignConfig::from_config(file).threads, 4);

  CampaignConfig cfg;
  EXPECT_EQ(cfg.threads, 1);  // serial by default
  cfg.threads = 0;            // hardware concurrency: valid
  EXPECT_NO_THROW(cfg.validate());
  cfg.threads = -1;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

}  // namespace
}  // namespace ompfuzz
