// Tests for the formal grammar (Listing 2) and the conformance checker.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "core/grammar.hpp"

namespace ompfuzz::core {
namespace {

using ast::AssignOp;
using ast::Block;
using ast::Expr;
using ast::FpWidth;
using ast::LValue;
using ast::OmpClauses;
using ast::Program;
using ast::ReductionOp;
using ast::Stmt;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

TEST(Grammar, HasAllPaperProductions) {
  const auto& grammar = test_program_grammar();
  const auto find = [&](const std::string& name) {
    for (const auto& p : grammar) {
      if (p.name == name) return true;
    }
    return false;
  };
  for (const char* rule :
       {"<function>", "<param-list>", "<param-declaration>", "<assignment>",
        "<expression>", "<term>", "<block>", "<openmp-head>", "<openmp-block>",
        "<openmp-critical>", "<if-block>", "<for-loop-head>", "<for-loop-block>",
        "<loop-header>", "<bool-expression>", "<omp-atomic>", "<omp-single>",
        "<omp-master>", "<schedule-clause>"}) {
    EXPECT_TRUE(find(rule)) << "missing production " << rule;
  }
}

TEST(Grammar, RenderMentionsOpenMPDirectives) {
  const std::string text = render_grammar();
  EXPECT_NE(text.find("#pragma omp parallel"), std::string::npos);
  EXPECT_NE(text.find("#pragma omp critical"), std::string::npos);
  EXPECT_NE(text.find("reduction("), std::string::npos);
  EXPECT_NE(text.find("<bool-expression>"), std::string::npos);
  EXPECT_NE(text.find("#pragma omp atomic"), std::string::npos);
  EXPECT_NE(text.find("#pragma omp single nowait"), std::string::npos);
  EXPECT_NE(text.find("schedule("), std::string::npos);
}

// Helper assembling a program with one parallel region built from pieces.
struct RegionBuilder {
  Program prog;
  VarId comp, x, i;

  RegionBuilder() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    x = prog.add_var({"var_1", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    prog.add_param(x);
    i = prog.add_var({"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
  }

  ast::StmtPtr make_region(bool with_preamble, bool omp_for,
                           std::optional<ReductionOp> reduction,
                           AssignOp comp_op, Block loop_extra = {}) {
    Block loop_body;
    loop_body.stmts.push_back(
        Stmt::assign(LValue{comp, nullptr}, comp_op, Expr::var(x)));
    for (auto& s : loop_extra.stmts) loop_body.stmts.push_back(std::move(s));
    Block region;
    if (with_preamble) {
      region.stmts.push_back(
          Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
    }
    region.stmts.push_back(
        Stmt::for_loop(i, Expr::int_const(4), std::move(loop_body), omp_for));
    OmpClauses clauses;
    clauses.privates.push_back(x);
    clauses.reduction = reduction;
    return Stmt::omp_parallel(std::move(clauses), std::move(region));
  }
};

bool has_rule(const std::vector<Violation>& v, const std::string& rule) {
  for (const auto& x : v) {
    if (x.rule == rule) return true;
  }
  return false;
}

TEST(Conformance, AcceptsWellFormedRegion) {
  RegionBuilder b;
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::AddAssign));
  GeneratorConfig cfg;
  EXPECT_TRUE(check_conformance(b.prog, cfg).empty());
}

TEST(Conformance, R1MissingPreamble) {
  RegionBuilder b;
  b.prog.body().stmts.push_back(b.make_region(false, true, ReductionOp::Sum,
                                              AssignOp::AddAssign));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R1"));
}

TEST(Conformance, R2OrphanedOmpFor) {
  RegionBuilder b;
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(b.x)));
  b.prog.body().stmts.push_back(
      Stmt::for_loop(b.i, Expr::int_const(4), std::move(body), /*omp_for=*/true));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R2"));
}

TEST(Conformance, R3CriticalOutsideParallelForBody) {
  RegionBuilder b;
  Block crit;
  crit.stmts.push_back(Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(b.x)));
  b.prog.body().stmts.push_back(Stmt::omp_critical(std::move(crit)));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R3"));
}

TEST(Conformance, R4NestedParallel) {
  RegionBuilder b;
  auto inner = b.make_region(true, false, std::nullopt, AssignOp::AddAssign);
  Block loop_extra;
  loop_extra.stmts.push_back(std::move(inner));
  // Outer region whose loop body contains another parallel region.
  Block loop_body;
  loop_body.stmts.push_back(Stmt::assign(LValue{b.x, nullptr}, AssignOp::Assign,
                                         Expr::fp_const(1.0)));
  for (auto& s : loop_extra.stmts) loop_body.stmts.push_back(std::move(s));
  Block region;
  region.stmts.push_back(Stmt::assign(LValue{b.x, nullptr}, AssignOp::Assign,
                                      Expr::fp_const(0.0)));
  region.stmts.push_back(
      Stmt::for_loop(b.i, Expr::int_const(2), std::move(loop_body), false));
  b.prog.body().stmts.push_back(Stmt::omp_parallel(OmpClauses{}, std::move(region)));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R4"));
}

TEST(Conformance, R5EmptyIfBody) {
  RegionBuilder b;
  ast::BoolExpr cond;
  cond.lhs = b.x;
  cond.rhs = Expr::fp_const(1.0);
  b.prog.body().stmts.push_back(Stmt::if_block(std::move(cond), Block{}));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R5"));
}

TEST(Conformance, R6OversizedExpression) {
  RegionBuilder b;
  GeneratorConfig cfg;
  cfg.max_expression_size = 2;
  auto e = Expr::var(b.x);
  for (int i = 0; i < 3; ++i) {
    e = Expr::binary(ast::BinOp::Add, std::move(e), Expr::var(b.x));
  }
  b.prog.body().stmts.push_back(
      Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign, std::move(e)));
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R6"));
}

TEST(Conformance, R6ParenthesizedGroupCountsAsOneTerm) {
  RegionBuilder b;
  GeneratorConfig cfg;
  cfg.max_expression_size = 2;
  // (x + x) + x : 2 top-level terms with the group parenthesized.
  auto grouped = Expr::binary(ast::BinOp::Add, Expr::var(b.x), Expr::var(b.x),
                              /*parenthesized=*/true);
  auto e = Expr::binary(ast::BinOp::Add, std::move(grouped), Expr::var(b.x));
  b.prog.body().stmts.push_back(
      Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign, std::move(e)));
  EXPECT_FALSE(has_rule(check_conformance(b.prog, cfg), "R6"));
}

TEST(Conformance, R7TooManyLines) {
  RegionBuilder b;
  GeneratorConfig cfg;
  cfg.max_lines_in_block = 2;
  for (int i = 0; i < 3; ++i) {
    b.prog.body().stmts.push_back(Stmt::assign(
        LValue{b.comp, nullptr}, AssignOp::AddAssign, Expr::fp_const(1.0)));
  }
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R7"));
}

TEST(Conformance, R8TooDeepNesting) {
  RegionBuilder b;
  GeneratorConfig cfg;
  cfg.max_nesting_levels = 1;
  Block inner;
  inner.stmts.push_back(Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign,
                                     Expr::fp_const(1.0)));
  ast::BoolExpr cond1;
  cond1.lhs = b.x;
  cond1.rhs = Expr::fp_const(0.0);
  Block mid;
  mid.stmts.push_back(Stmt::if_block(std::move(cond1), std::move(inner)));
  ast::BoolExpr cond2;
  cond2.lhs = b.x;
  cond2.rhs = Expr::fp_const(0.0);
  b.prog.body().stmts.push_back(Stmt::if_block(std::move(cond2), std::move(mid)));
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R8"));
}

TEST(Conformance, R9WrongReductionOperator) {
  RegionBuilder b;
  // reduction(+) but comp *= inside the region.
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::MulAssign));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R9"));
}

TEST(Conformance, R9SubAssignAllowedForSumReduction) {
  RegionBuilder b;
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::SubAssign));
  GeneratorConfig cfg;
  EXPECT_FALSE(has_rule(check_conformance(b.prog, cfg), "R9"));
}

TEST(Conformance, R10MathCallsForbidden) {
  RegionBuilder b;
  GeneratorConfig cfg;
  cfg.math_func_allowed = false;
  b.prog.body().stmts.push_back(Stmt::assign(
      LValue{b.comp, nullptr}, AssignOp::AddAssign,
      Expr::call(ast::MathFunc::Sin, Expr::var(b.x))));
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R10"));
}

// --------------------------------------------------------------------------
// Feature-gated constructs: R11 (atomic), R12 (single/master), R13 (schedule)
// --------------------------------------------------------------------------

TEST(Conformance, R11AtomicRequiresItsFeatureGate) {
  RegionBuilder b;
  Block loop_extra;
  loop_extra.stmts.push_back(Stmt::omp_atomic(LValue{b.x, nullptr},
                                              AssignOp::AddAssign,
                                              Expr::fp_const(1.0)));
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::AddAssign,
                                              std::move(loop_extra)));
  GeneratorConfig cfg;  // enable_atomic defaults to off
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R11"));
  cfg.enable_atomic = true;
  EXPECT_TRUE(check_conformance(b.prog, cfg).empty());
}

TEST(Conformance, R11AtomicOutsideParallelRegion) {
  RegionBuilder b;
  b.prog.body().stmts.push_back(Stmt::omp_atomic(LValue{b.x, nullptr},
                                                 AssignOp::AddAssign,
                                                 Expr::fp_const(1.0)));
  GeneratorConfig cfg;
  cfg.enable_atomic = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R11"));
}

TEST(Conformance, R11AtomicMustBeACompoundUpdate) {
  RegionBuilder b;
  Block loop_extra;
  loop_extra.stmts.push_back(Stmt::omp_atomic(LValue{b.x, nullptr},
                                              AssignOp::Assign,
                                              Expr::fp_const(1.0)));
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::AddAssign,
                                              std::move(loop_extra)));
  GeneratorConfig cfg;
  cfg.enable_atomic = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R11"));
}

// Region of shape "x-init; <sync blocks>; omp-for loop" — the only slot the
// grammar gives single/master blocks.
ast::StmtPtr make_sync_region(RegionBuilder& b,
                              std::vector<ast::StmtPtr> sync_blocks) {
  Block loop_body;
  loop_body.stmts.push_back(
      Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign, Expr::var(b.x)));
  Block region;
  region.stmts.push_back(
      Stmt::assign(LValue{b.x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  for (auto& s : sync_blocks) region.stmts.push_back(std::move(s));
  region.stmts.push_back(
      Stmt::for_loop(b.i, Expr::int_const(4), std::move(loop_body), true));
  OmpClauses clauses;
  clauses.privates.push_back(b.x);
  clauses.reduction = ReductionOp::Sum;
  return Stmt::omp_parallel(std::move(clauses), std::move(region));
}

Block one_assign(RegionBuilder& b) {
  Block body;
  body.stmts.push_back(
      Stmt::assign(LValue{b.x, nullptr}, AssignOp::AddAssign, Expr::fp_const(1.0)));
  return body;
}

TEST(Conformance, R12SingleRequiresItsFeatureGate) {
  RegionBuilder b;
  std::vector<ast::StmtPtr> sync;
  sync.push_back(Stmt::omp_single(one_assign(b)));
  b.prog.body().stmts.push_back(make_sync_region(b, std::move(sync)));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R12"));
  cfg.enable_single = true;
  EXPECT_TRUE(check_conformance(b.prog, cfg).empty());
}

TEST(Conformance, R12MasterAcceptedInTheSyncSlot) {
  RegionBuilder b;
  std::vector<ast::StmtPtr> sync;
  sync.push_back(Stmt::omp_master(one_assign(b)));
  b.prog.body().stmts.push_back(make_sync_region(b, std::move(sync)));
  GeneratorConfig cfg;
  cfg.enable_master = true;
  EXPECT_TRUE(check_conformance(b.prog, cfg).empty());
}

TEST(Conformance, R12SingleMisplacedInLoopBody) {
  RegionBuilder b;
  Block loop_extra;
  loop_extra.stmts.push_back(Stmt::omp_single(one_assign(b)));
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::AddAssign,
                                              std::move(loop_extra)));
  GeneratorConfig cfg;
  cfg.enable_single = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R12"));
}

TEST(Conformance, R12SingleBodyMustBeNonEmptyAssignments) {
  RegionBuilder b;
  std::vector<ast::StmtPtr> sync;
  sync.push_back(Stmt::omp_single(Block{}));
  b.prog.body().stmts.push_back(make_sync_region(b, std::move(sync)));
  GeneratorConfig cfg;
  cfg.enable_single = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R12"));
}

ast::StmtPtr make_scheduled_region(RegionBuilder& b, bool omp_for,
                                   ast::ScheduleKind kind, int chunk) {
  Block loop_body;
  loop_body.stmts.push_back(
      Stmt::assign(LValue{b.comp, nullptr}, AssignOp::AddAssign, Expr::var(b.x)));
  Block region;
  region.stmts.push_back(
      Stmt::assign(LValue{b.x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  region.stmts.push_back(Stmt::for_loop(b.i, Expr::int_const(4),
                                        std::move(loop_body), omp_for, kind,
                                        chunk));
  OmpClauses clauses;
  clauses.privates.push_back(b.x);
  clauses.reduction = ReductionOp::Sum;
  return Stmt::omp_parallel(std::move(clauses), std::move(region));
}

TEST(Conformance, R13ScheduleRequiresItsFeatureGate) {
  RegionBuilder b;
  b.prog.body().stmts.push_back(
      make_scheduled_region(b, true, ast::ScheduleKind::Dynamic, 2));
  GeneratorConfig cfg;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R13"));
  cfg.enable_schedule = true;
  EXPECT_TRUE(check_conformance(b.prog, cfg).empty());
}

// The for_loop factory rejects these states outright, so exercise the R13
// branches the way a buggy post-construction mutation (e.g. a reducer pass)
// would reach them: build a valid loop, then poke the public fields.
TEST(Conformance, R13ScheduleOnSerialLoop) {
  RegionBuilder b;
  Block loop_body;
  loop_body.stmts.push_back(
      Stmt::assign(LValue{b.x, nullptr}, AssignOp::AddAssign, Expr::fp_const(1.0)));
  Block loop_extra;
  loop_extra.stmts.push_back(Stmt::for_loop(b.i, Expr::int_const(2),
                                            std::move(loop_body),
                                            /*omp_for=*/false));
  loop_extra.stmts.back()->schedule = ast::ScheduleKind::Static;
  b.prog.body().stmts.push_back(b.make_region(true, true, ReductionOp::Sum,
                                              AssignOp::AddAssign,
                                              std::move(loop_extra)));
  GeneratorConfig cfg;
  cfg.enable_schedule = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R13"));
}

TEST(Conformance, R13NegativeChunk) {
  RegionBuilder b;
  auto region =
      make_scheduled_region(b, true, ast::ScheduleKind::Static, 2);
  region->body.stmts.back()->schedule_chunk = -1;
  b.prog.body().stmts.push_back(std::move(region));
  GeneratorConfig cfg;
  cfg.enable_schedule = true;
  EXPECT_TRUE(has_rule(check_conformance(b.prog, cfg), "R13"));
}

// Property: feature-enabled generation still conforms across seeds.
TEST(Conformance, FeatureEnabledGeneratedProgramsConform) {
  GeneratorConfig cfg;
  cfg.enable_atomic = true;
  cfg.enable_single = true;
  cfg.enable_master = true;
  cfg.enable_schedule = true;
  cfg.max_loop_trip_count = 20;
  cfg.num_threads = 4;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 6000 + s);
    const auto violations = check_conformance(prog, cfg);
    EXPECT_TRUE(violations.empty())
        << "seed " << 6000 + s << ": " << violations[0].rule << " "
        << violations[0].detail;
  }
}

// Property: every generated program conforms, across seeds and configs.
struct GenConformanceParam {
  std::uint64_t seed_base;
  int max_expr;
  int max_nest;
  int max_lines;
};

class GeneratedConformance
    : public ::testing::TestWithParam<GenConformanceParam> {};

TEST_P(GeneratedConformance, GeneratedProgramsConform) {
  const auto p = GetParam();
  GeneratorConfig cfg;
  cfg.max_expression_size = p.max_expr;
  cfg.max_nesting_levels = p.max_nest;
  cfg.max_lines_in_block = p.max_lines;
  cfg.max_loop_trip_count = 20;
  cfg.num_threads = 4;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", p.seed_base + s);
    const auto violations = check_conformance(prog, cfg);
    EXPECT_TRUE(violations.empty())
        << "seed " << p.seed_base + s << ": " << violations[0].rule << " "
        << violations[0].detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, GeneratedConformance,
    ::testing::Values(GenConformanceParam{1000, 5, 3, 10},
                      GenConformanceParam{2000, 1, 1, 1},
                      GenConformanceParam{3000, 10, 4, 3},
                      GenConformanceParam{4000, 2, 2, 20},
                      GenConformanceParam{5000, 8, 1, 5}));

}  // namespace
}  // namespace ompfuzz::core
