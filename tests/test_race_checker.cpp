// Tests for the static data-race analyzer: it must flag each hand-built racy
// pattern and accept each safe pattern of Section III-G.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/race_checker.hpp"

namespace ompfuzz::core {
namespace {

using ast::AssignOp;
using ast::Block;
using ast::Expr;
using ast::FpWidth;
using ast::LValue;
using ast::OmpClauses;
using ast::Program;
using ast::ReductionOp;
using ast::Stmt;
using ast::StmtPtr;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

struct Fixture {
  Program prog;
  VarId comp, shared_x, arr, i;

  Fixture() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    shared_x =
        prog.add_var({"var_1", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    arr = prog.add_var({"var_2", VarKind::FpArray, VarRole::Param, FpWidth::F64, 64});
    i = prog.add_var({"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
    prog.add_param(shared_x);
    prog.add_param(arr);
  }

  /// Wraps `loop_body` in "parallel { x-init; for(...) { loop_body } }".
  void add_region(Block loop_body, OmpClauses clauses = {}, bool omp_for = true) {
    Block region;
    region.stmts.push_back(Stmt::assign(LValue{shared_x, nullptr}, AssignOp::Assign,
                                        Expr::fp_const(0.0)));
    // Only privatized x may be initialized like this; callers that keep x
    // shared pass their own clauses where x is private... for the racy-write
    // tests this very statement is the race under test.
    region.stmts.push_back(
        Stmt::for_loop(i, Expr::int_const(8), std::move(loop_body), omp_for));
    prog.body().stmts.push_back(
        Stmt::omp_parallel(std::move(clauses), std::move(region)));
  }

  bool has(RaceKind kind) {
    const auto report = check_races(prog);
    for (const auto& f : report.findings) {
      if (f.kind == kind) return true;
    }
    return false;
  }
};

TEST(RaceChecker, SharedScalarWriteOutsideCriticalIsRace) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  f.add_region(std::move(loop));  // x stays shared: preamble write races too
  EXPECT_TRUE(f.has(RaceKind::SharedScalarWrite));
}

TEST(RaceChecker, PrivatizedScalarWriteIsSafe) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, CompUnprotectedWithoutReduction) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::CompUnprotected));
}

TEST(RaceChecker, CompWithReductionIsSafe) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  clauses.reduction = ReductionOp::Sum;
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, CompInsideCriticalIsSafe) {
  Fixture f;
  Block crit;
  crit.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  Block loop;
  loop.stmts.push_back(Stmt::omp_critical(std::move(crit)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, CriticalWriteWithUncriticalReadIsRace) {
  Fixture f;
  // y written in critical but read outside: mixed access.
  const VarId y =
      f.prog.add_var({"var_9", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
  f.prog.add_param(y);
  Block crit;
  crit.stmts.push_back(
      Stmt::assign(LValue{y, nullptr}, AssignOp::AddAssign, Expr::fp_const(1.0)));
  Block loop;
  loop.stmts.push_back(Stmt::omp_critical(std::move(crit)));
  // Uncritical read of y feeding a private.
  Block region_loop;
  for (auto& s : loop.stmts) region_loop.stmts.push_back(std::move(s));
  region_loop.stmts.push_back(
      Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign, Expr::var(y)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(region_loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::SharedScalarMixed));
}

TEST(RaceChecker, ThreadIdIndexedArrayWriteIsSafe) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, OmpForIndexedArrayWriteIsSafe) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::var(f.i)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses), /*omp_for=*/true);
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, LoopIndexedWriteInSerialRegionLoopIsRace) {
  Fixture f;
  // Same write, but the region loop is NOT work-shared: every thread writes
  // every element.
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::var(f.i)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses), /*omp_for=*/false);
  EXPECT_TRUE(f.has(RaceKind::ArrayUnsafeWrite));
}

TEST(RaceChecker, ConstantIndexedArrayWriteIsRace) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::int_const(3)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::ArrayUnsafeWrite));
}

TEST(RaceChecker, MixedArraySubscriptDisciplineIsRace) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  // Read with a different discipline: the omp-for index.
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign,
                                    Expr::array(f.arr, Expr::var(f.i))));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::ArrayMixedAccess));
}

TEST(RaceChecker, ReadOnlyArrayAnySubscriptIsSafe) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(
      LValue{f.shared_x, nullptr}, AssignOp::Assign,
      Expr::array(f.arr, Expr::binary(ast::BinOp::Mod, Expr::var(f.i),
                                      Expr::int_const(64)))));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, UninitializedPrivateReadFlagged) {
  Fixture f;
  // Region whose loop reads private x before any assignment.
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.shared_x)));
  Block region;
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop), true));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  clauses.reduction = ReductionOp::Sum;
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  EXPECT_TRUE(f.has(RaceKind::UninitializedPrivate));
}

TEST(RaceChecker, FirstprivateReadIsInitialized) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.shared_x)));
  Block region;
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop), true));
  OmpClauses clauses;
  clauses.firstprivates.push_back(f.shared_x);
  clauses.reduction = ReductionOp::Sum;
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, SerialCodeIsNeverFlagged) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.shared_x, nullptr}, AssignOp::AddAssign, Expr::var(f.comp)));
  f.prog.body().stmts.push_back(Stmt::assign(
      LValue{f.arr, Expr::int_const(5)}, AssignOp::Assign, Expr::var(f.shared_x)));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, RegionLocalDeclIsThreadPrivate) {
  Fixture f;
  const VarId tmp =
      f.prog.add_var({"var_8", VarKind::FpScalar, VarRole::Temp, FpWidth::F64, 0});
  Block loop;
  loop.stmts.push_back(Stmt::decl(tmp, Expr::fp_const(2.0)));
  loop.stmts.push_back(Stmt::assign(LValue{tmp, nullptr}, AssignOp::MulAssign,
                                    Expr::fp_const(3.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

// ---------------------------------------------------------------------------
// Golden-finding corpus: one minimal program per RaceKind, pinned to the
// exact (kind, variable) findings in their deterministic order. Any analyzer
// change that alters a verdict, a variable attribution, or the ordering
// contract (uninitialized first, then scalars by VarId, then arrays) fails
// here before it can shift a campaign's program stream.
// ---------------------------------------------------------------------------

using KindVar = std::pair<RaceKind, std::string>;

std::vector<KindVar> finding_pairs(const Program& prog) {
  std::vector<KindVar> out;
  for (const auto& f : check_races(prog).findings) {
    out.emplace_back(f.kind, f.variable);
  }
  return out;
}

TEST(GoldenCorpus, CompUnprotected) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::CompUnprotected, "comp"}}));
}

TEST(GoldenCorpus, SharedScalarWrite) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr},
                                    AssignOp::AddAssign, Expr::fp_const(1.0)));
  f.add_region(std::move(loop));  // x stays shared: preamble write races too
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::SharedScalarWrite, "var_1"}}));
}

TEST(GoldenCorpus, SharedScalarMixed) {
  Fixture f;
  const VarId y =
      f.prog.add_var({"var_9", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
  f.prog.add_param(y);
  Block crit;
  crit.stmts.push_back(
      Stmt::assign(LValue{y, nullptr}, AssignOp::AddAssign, Expr::fp_const(1.0)));
  Block loop;
  loop.stmts.push_back(Stmt::omp_critical(std::move(crit)));
  loop.stmts.push_back(
      Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign, Expr::var(y)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::SharedScalarMixed, "var_9"}}));
}

TEST(GoldenCorpus, ArrayUnsafeWrite) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::int_const(3)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::ArrayUnsafeWrite, "var_2"}}));
}

TEST(GoldenCorpus, ArrayMixedAccess) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign,
                                    Expr::array(f.arr, Expr::var(f.i))));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::ArrayMixedAccess, "var_2"}}));
}

TEST(GoldenCorpus, UninitializedPrivate) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.shared_x)));
  Block region;
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop), true));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  clauses.reduction = ReductionOp::Sum;
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::UninitializedPrivate, "var_1"}}));
}

TEST(GoldenCorpus, FindingOrderIsUninitThenScalarsThenArrays) {
  Fixture f;
  // One region racing on comp (VarId 0), shared_x (VarId 1), and the array
  // (VarId 2): scalars come first in VarId order, then the array.
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.shared_x)));
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::int_const(3)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  f.add_region(std::move(loop));  // shared_x stays shared: preamble write races
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::CompUnprotected, "comp"},
                                  {RaceKind::SharedScalarWrite, "var_1"},
                                  {RaceKind::ArrayUnsafeWrite, "var_2"}}));
}

TEST(GoldenCorpus, UninitializedFindingsLeadTheRegionReport) {
  Fixture f;
  const VarId p =
      f.prog.add_var({"var_9", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
  f.prog.add_param(p);
  Block loop;
  loop.stmts.push_back(
      Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign, Expr::var(p)));
  Block region;
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop), true));
  OmpClauses clauses;
  clauses.privates.push_back(p);  // read before assignment
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::UninitializedPrivate, "var_9"},
                                  {RaceKind::CompUnprotected, "comp"}}));
}

// ---------------------------------------------------------------------------
// Feature constructs: atomics, single/master blocks, schedule clauses. The
// analyzer must model their real semantics — atomic-vs-atomic race-free,
// atomic-vs-plain racy, one single block exclusive but two different singles
// concurrent, master always thread 0, schedule irrelevant to the iteration
// partition argument.
// ---------------------------------------------------------------------------

VarId add_shared_fp(Program& prog, const char* name) {
  const VarId v =
      prog.add_var({name, VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
  prog.add_param(v);
  return v;
}

TEST(RaceChecker, AtomicUpdatesOnSameScalarAreSafe) {
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  Block loop;
  loop.stmts.push_back(Stmt::omp_atomic(LValue{y, nullptr}, AssignOp::AddAssign,
                                        Expr::fp_const(1.0)));
  loop.stmts.push_back(Stmt::omp_atomic(LValue{y, nullptr}, AssignOp::MulAssign,
                                        Expr::fp_const(2.0)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, AtomicVsPlainReadIsRace) {
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  Block loop;
  loop.stmts.push_back(Stmt::omp_atomic(LValue{y, nullptr}, AssignOp::AddAssign,
                                        Expr::fp_const(1.0)));
  // Plain read of y into a private: not ordered against the atomic RMW.
  loop.stmts.push_back(
      Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign, Expr::var(y)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::AtomicMixedAccess));
}

TEST(RaceChecker, AtomicArrayElementVsPlainReadIsRace) {
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::omp_atomic(LValue{f.arr, Expr::int_const(3)},
                                        AssignOp::AddAssign, Expr::fp_const(1.0)));
  loop.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign,
                                    Expr::array(f.arr, Expr::var(f.i))));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_TRUE(f.has(RaceKind::AtomicMixedAccess));
}

TEST(RaceChecker, ScheduledOmpForKeepsIterationPartitionSafe) {
  // schedule(dynamic, 3) still hands each iteration to exactly one thread,
  // so an omp-for-index-affine write stays disjoint.
  Fixture f;
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::var(f.i)},
                                    AssignOp::Assign, Expr::fp_const(1.0)));
  Block region;
  region.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr},
                                      AssignOp::Assign, Expr::fp_const(0.0)));
  region.stmts.push_back(Stmt::for_loop(f.i, Expr::int_const(8), std::move(loop),
                                        /*omp_for=*/true,
                                        ast::ScheduleKind::Dynamic, 3));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

/// Region of shape: x-init preamble, the given sync blocks, then a safe
/// omp-for loop (tid-partitioned array writes).
void add_sync_region(Fixture& f, std::vector<StmtPtr> sync_blocks,
                     Block loop_body = {}) {
  if (loop_body.stmts.empty()) {
    loop_body.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                           AssignOp::Assign,
                                           Expr::fp_const(1.0)));
  }
  Block region;
  region.stmts.push_back(Stmt::assign(LValue{f.shared_x, nullptr},
                                      AssignOp::Assign, Expr::fp_const(0.0)));
  for (auto& s : sync_blocks) region.stmts.push_back(std::move(s));
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(8), std::move(loop_body), true));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
}

Block single_update(VarId v, AssignOp op, double value) {
  Block b;
  b.stmts.push_back(Stmt::assign(LValue{v, nullptr}, op, Expr::fp_const(value)));
  return b;
}

TEST(GoldenCorpus, SingleBlockExclusiveWriteIsNotARace) {
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  std::vector<StmtPtr> sync;
  sync.push_back(Stmt::omp_single(single_update(y, AssignOp::AddAssign, 1.0)));
  add_sync_region(f, std::move(sync));
  EXPECT_EQ(finding_pairs(f.prog), (std::vector<KindVar>{}));
}

TEST(RaceChecker, TwoDifferentSingleBlocksOnSameScalarIsRace) {
  // Two single blocks may execute concurrently on different threads; the
  // construct only serializes accesses within one block.
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  std::vector<StmtPtr> sync;
  sync.push_back(Stmt::omp_single(single_update(y, AssignOp::AddAssign, 1.0)));
  sync.push_back(Stmt::omp_single(single_update(y, AssignOp::MulAssign, 2.0)));
  add_sync_region(f, std::move(sync));
  EXPECT_TRUE(f.has(RaceKind::SharedScalarWrite));
}

TEST(RaceChecker, TwoMasterBlocksOnSameScalarAreSafe) {
  // Master always executes on thread 0, so two master blocks share a thread.
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  std::vector<StmtPtr> sync;
  sync.push_back(Stmt::omp_master(single_update(y, AssignOp::AddAssign, 1.0)));
  sync.push_back(Stmt::omp_master(single_update(y, AssignOp::MulAssign, 2.0)));
  add_sync_region(f, std::move(sync));
  EXPECT_TRUE(check_races(f.prog).race_free());
}

TEST(RaceChecker, SingleWriteVsLoopReadIsRace) {
  // single is emitted with nowait: the loop's plain reads are not ordered
  // against the single block's write.
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  std::vector<StmtPtr> sync;
  sync.push_back(Stmt::omp_single(single_update(y, AssignOp::AddAssign, 1.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                    AssignOp::Assign, Expr::var(y)));
  add_sync_region(f, std::move(sync), std::move(loop));
  EXPECT_TRUE(f.has(RaceKind::SharedScalarWrite));
}

TEST(GoldenCorpus, AtomicMixedAccess) {
  Fixture f;
  const VarId y = add_shared_fp(f.prog, "var_9");
  Block loop;
  loop.stmts.push_back(Stmt::omp_atomic(LValue{y, nullptr}, AssignOp::AddAssign,
                                        Expr::fp_const(1.0)));
  loop.stmts.push_back(
      Stmt::assign(LValue{f.shared_x, nullptr}, AssignOp::Assign, Expr::var(y)));
  OmpClauses clauses;
  clauses.privates.push_back(f.shared_x);
  f.add_region(std::move(loop), std::move(clauses));
  EXPECT_EQ(finding_pairs(f.prog),
            (std::vector<KindVar>{{RaceKind::AtomicMixedAccess, "var_9"}}));
}

TEST(RaceChecker, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(RaceKind::CompUnprotected), "comp-unprotected");
  EXPECT_STREQ(to_string(RaceKind::ArrayMixedAccess), "array-mixed-access");
  EXPECT_STREQ(to_string(RaceKind::UninitializedPrivate), "uninitialized-private");
  EXPECT_STREQ(to_string(RaceKind::AtomicMixedAccess), "atomic-mixed-access");
}

}  // namespace
}  // namespace ompfuzz::core
