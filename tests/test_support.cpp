// Unit tests for the support substrate: RNG, config, stats, tables, JSON.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>

#include "support/config.hpp"
#include "support/error.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace ompfuzz {
namespace {

// ---------------------------------------------------------------- RNG -----

TEST(Rng, SplitMix64KnownSequence) {
  // Reference values from the SplitMix64 reference implementation, seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  RandomEngine a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  RandomEngine a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  RandomEngine parent1(7), parent2(7);
  (void)parent2.next_u64();  // consuming the parent stream...
  RandomEngine child1 = parent1.fork(3);
  RandomEngine child2 = parent2.fork(3);
  // ...must not change what a forked child produces.
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, UniformIntBounds) {
  RandomEngine rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleton) {
  RandomEngine rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntCoversRange) {
  RandomEngine rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval) {
  RandomEngine rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  RandomEngine rng(19);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  RandomEngine rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  RandomEngine rng(29);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PickWeightedRespectsZeroWeights) {
  RandomEngine rng(31);
  const std::array<double, 3> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.pick_weighted(weights), 1u);
  }
}

TEST(Rng, PickWeightedOvershootFallsBackToLastPositiveBucket) {
  // Regression: with this weight vector, the cumulative subtraction in
  // pick_weighted overshoots past every positive bucket when the unit draw
  // is the largest value uniform_real() can produce ((2^53-1) * 2^-53).
  // The old fallback returned `weights.size() - 1` — the zero-weight
  // bucket; the fix must return the last positive-weight index instead.
  constexpr std::array<std::uint64_t, 10> bits = {
      0x3f7a1066f8e31700ULL, 0x3feca3df6e5718aeULL, 0x3fe09fb2cc0fe21cULL,
      0x3fe29b4c98ea5749ULL, 0x3fa7f0baaaef3dafULL, 0x3f3729a4a4189000ULL,
      0x3fd054995b889fe1ULL, 0x3fbf69ed6abed77eULL, 0x3ff25ea8d3b512d0ULL,
      0x0000000000000000ULL};
  std::array<double, 10> weights{};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    weights[i] = std::bit_cast<double>(bits[i]);
  }
  const double unit = std::bit_cast<double>(0x3fefffffffffffffULL);
  ASSERT_LT(unit, 1.0);
  EXPECT_EQ(RandomEngine::pick_weighted_at(unit, weights), 8u);
}

TEST(Rng, PickWeightedAtNeverSelectsZeroWeightBucket) {
  const std::array<double, 5> weights = {0.0, 0.25, 0.0, 0.75, 0.0};
  RandomEngine rng(43);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t picked =
        RandomEngine::pick_weighted_at(rng.uniform_real(), weights);
    EXPECT_TRUE(picked == 1 || picked == 3) << picked;
  }
  // Degenerate inputs keep the documented fallbacks.
  const std::array<double, 3> all_zero = {0.0, 0.0, 0.0};
  EXPECT_EQ(RandomEngine::pick_weighted_at(0.5, all_zero), 0u);
}

TEST(Rng, PickWeightedProportions) {
  RandomEngine rng(37);
  const std::array<double, 2> weights = {1.0, 3.0};
  int count1 = 0;
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) count1 += (rng.pick_weighted(weights) == 1);
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  RandomEngine rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// ---------------------------------------------------------------- config ---

TEST(Config, ParsesSectionsAndTypes) {
  const auto cfg = ConfigFile::parse(
      "[generator]\n"
      "max_expression_size = 7  ; comment\n"
      "math_func_allowed = true\n"
      "[campaign]\n"
      "alpha = 0.25\n"
      "name = hello\n");
  EXPECT_EQ(cfg.get_int("generator.max_expression_size", 0), 7);
  EXPECT_TRUE(cfg.get_bool("generator.math_func_allowed", false));
  EXPECT_DOUBLE_EQ(cfg.get_double("campaign.alpha", 0.0), 0.25);
  EXPECT_EQ(cfg.get_or("campaign.name", ""), "hello");
}

TEST(Config, MissingKeysFallBack) {
  const auto cfg = ConfigFile::parse("");
  EXPECT_EQ(cfg.get_int("nope", 5), 5);
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(ConfigFile::parse("key without equals\n"), ConfigError);
  EXPECT_THROW(ConfigFile::parse("[unclosed\n"), ConfigError);
  EXPECT_THROW(ConfigFile::parse("= value\n"), ConfigError);
}

TEST(Config, BadTypedValuesThrow) {
  const auto cfg = ConfigFile::parse("x = notanumber\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("x", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_double("x", 0.0), ConfigError);
  EXPECT_THROW((void)cfg.get_bool("b", false), ConfigError);
}

TEST(Config, TrailingGarbageIsRejectedNotTruncated) {
  // Regression: "timeout = 1.5x" must be a loud ConfigError, never a silent
  // 1.5 (or 1) — truncating at the first bad character would misread the
  // config.
  const auto cfg = ConfigFile::parse(
      "timeout = 1.5x\n"
      "count = 10x\n"
      "hexish = 0x10\n"
      "pair = 1.5 2.5\n"
      "expo = 1e\n");
  EXPECT_THROW((void)cfg.get_double("timeout", 0.0), ConfigError);
  EXPECT_THROW((void)cfg.get_int("count", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_int("hexish", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_double("pair", 0.0), ConfigError);
  EXPECT_THROW((void)cfg.get_double("expo", 0.0), ConfigError);
}

TEST(Config, OutOfRangeValuesThrowWithClearMessage) {
  const auto cfg = ConfigFile::parse(
      "big_int = 99999999999999999999999999\n"
      "big_double = 1e999\n"
      "ok = 42\n");
  try {
    (void)cfg.get_int("big_int", 0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  try {
    (void)cfg.get_double("big_double", 0.0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  // The range-checked overload guards narrowing conversions.
  EXPECT_EQ(cfg.get_int("ok", 0, 0, 100), 42);
  EXPECT_THROW((void)cfg.get_int("ok", 0, 0, 10), ConfigError);
  EXPECT_THROW((void)cfg.get_int("ok", 0, 50, 100), ConfigError);
}

TEST(Config, IntTypedSectionsRejectOversizedValues) {
  // 2^33 fits int64 but not int: from_config must throw, not wrap to a
  // small positive number.
  EXPECT_THROW((void)GeneratorConfig::from_config(ConfigFile::parse(
                   "[generator]\narray_size = 8589934592\n")),
               ConfigError);
  EXPECT_THROW((void)CampaignConfig::from_config(ConfigFile::parse(
                   "[campaign]\nnum_programs = 8589934592\n")),
               ConfigError);
  EXPECT_THROW((void)ExecutorConfig::from_config(ConfigFile::parse(
                   "[executor]\nmax_inflight = 8589934592\n")),
               ConfigError);
}

TEST(Config, StoreSectionParsesAndValidates) {
  const auto defaults = StoreConfig::from_config(ConfigFile::parse(""));
  EXPECT_FALSE(defaults.enabled);
  EXPECT_EQ(defaults.dir, "_store");

  const auto cfg = StoreConfig::from_config(ConfigFile::parse(
      "[store]\nenabled = true\ndir = /tmp/my_store\n"));
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.dir, "/tmp/my_store");

  StoreConfig bad;
  bad.dir.clear();
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(Config, TelemetrySectionParsesAndValidates) {
  const auto defaults = TelemetryConfig::from_config(ConfigFile::parse(""));
  EXPECT_TRUE(defaults.trace_file.empty());
  EXPECT_TRUE(defaults.metrics_file.empty());
  EXPECT_EQ(defaults.interval_ms, 500);
  EXPECT_FALSE(defaults.heartbeat);

  const auto cfg = TelemetryConfig::from_config(ConfigFile::parse(
      "[telemetry]\ntrace_file = /tmp/trace.json\n"
      "metrics_file = /tmp/metrics.json\ninterval_ms = 125\n"
      "heartbeat = true\n"));
  EXPECT_EQ(cfg.trace_file, "/tmp/trace.json");
  EXPECT_EQ(cfg.metrics_file, "/tmp/metrics.json");
  EXPECT_EQ(cfg.interval_ms, 125);
  EXPECT_TRUE(cfg.heartbeat);

  EXPECT_THROW(TelemetryConfig::from_config(
                   ConfigFile::parse("[telemetry]\ninterval_ms = 0\n")),
               ConfigError);
}

TEST(Config, SchedulerSectionParsesAndValidates) {
  const auto defaults = SchedulerConfig::from_config(ConfigFile::parse(""));
  EXPECT_EQ(defaults.backends, 1);
  EXPECT_EQ(defaults.batch_size, 1);
  EXPECT_TRUE(defaults.steal);

  const auto cfg = SchedulerConfig::from_config(ConfigFile::parse(
      "[scheduler]\nbackends = 3\nbatch_size = 16\nsteal = off\n"));
  EXPECT_EQ(cfg.backends, 3);
  EXPECT_EQ(cfg.batch_size, 16);
  EXPECT_FALSE(cfg.steal);

  EXPECT_THROW(SchedulerConfig::from_config(
                   ConfigFile::parse("[scheduler]\nbackends = 0\n")),
               ConfigError);
  EXPECT_THROW(SchedulerConfig::from_config(
                   ConfigFile::parse("[scheduler]\nbatch_size = -4\n")),
               ConfigError);
}

TEST(Config, ThreadCountResolution) {
  // One helper for every `threads`-style knob: 0 (and anything negative,
  // should a caller skip validation) resolves to hardware concurrency, at
  // least 1; positive values pass through.
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_EQ(resolve_thread_count(0), hardware_thread_count());
  EXPECT_EQ(resolve_thread_count(-3), hardware_thread_count());
  EXPECT_GE(hardware_thread_count(), 1u);
}

TEST(Config, GeneratorConfigFromFileAndValidation) {
  const auto file = ConfigFile::parse(
      "[generator]\nmax_expression_size = 9\narray_size = 64\n");
  const auto gen = GeneratorConfig::from_config(file);
  EXPECT_EQ(gen.max_expression_size, 9);
  EXPECT_EQ(gen.array_size, 64);
  EXPECT_EQ(gen.max_nesting_levels, 3);  // default preserved
}

TEST(Config, GeneratorConfigRejectsBadValues) {
  GeneratorConfig bad;
  bad.max_expression_size = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = GeneratorConfig{};
  bad.math_func_probability = 1.5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = GeneratorConfig{};
  bad.p_atomic = -0.1;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = GeneratorConfig{};
  bad.p_schedule = 1.2;
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(Config, GeneratorFeatureGatesDefaultOff) {
  const auto gen = GeneratorConfig::from_config(ConfigFile::parse(""));
  EXPECT_FALSE(gen.enable_atomic);
  EXPECT_FALSE(gen.enable_single);
  EXPECT_FALSE(gen.enable_master);
  EXPECT_FALSE(gen.enable_schedule);
}

TEST(Config, GeneratorFeaturesCsvParsing) {
  const auto gen = GeneratorConfig::from_config(ConfigFile::parse(
      "[generator]\nfeatures = atomic, schedule\n"));
  EXPECT_TRUE(gen.enable_atomic);
  EXPECT_FALSE(gen.enable_single);
  EXPECT_FALSE(gen.enable_master);
  EXPECT_TRUE(gen.enable_schedule);

  // Whitespace-tolerant, order-insensitive; every name must be known.
  GeneratorConfig g;
  g.enable_features("  master ,single  ");
  EXPECT_TRUE(g.enable_single);
  EXPECT_TRUE(g.enable_master);
  EXPECT_FALSE(g.enable_atomic);
  EXPECT_THROW(g.enable_features("atomic,tasks"), ConfigError);
}

TEST(Config, GeneratorFeaturesBoolKeysAlsoWork) {
  const auto gen = GeneratorConfig::from_config(ConfigFile::parse(
      "[generator]\nenable_single = true\np_single = 0.25\n"));
  EXPECT_TRUE(gen.enable_single);
  EXPECT_DOUBLE_EQ(gen.p_single, 0.25);
}

TEST(Config, CampaignConfigParsesImplementations) {
  const auto file = ConfigFile::parse(
      "[campaign]\nnum_programs = 10\nalpha = 0.3\n"
      "[implementations]\n"
      "gcc = profile: libgomp\n"
      "real = g++ -fopenmp -O3 {src} -o {bin}\n");
  const auto c = CampaignConfig::from_config(file);
  EXPECT_EQ(c.num_programs, 10);
  EXPECT_DOUBLE_EQ(c.alpha, 0.3);
  ASSERT_EQ(c.implementations.size(), 2u);
  // std::map ordering: "gcc" < "real".
  EXPECT_EQ(c.implementations[0].name, "gcc");
  EXPECT_EQ(c.implementations[0].profile, "libgomp");
  EXPECT_EQ(c.implementations[1].name, "real");
  EXPECT_TRUE(c.implementations[1].profile.empty());
}

TEST(Config, CampaignValidationRejectsBadThresholds) {
  CampaignConfig c;
  c.alpha = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = CampaignConfig{};
  c.beta = 1.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

// ---------------------------------------------------------------- strings --

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a{x}b{x}", "{x}", "1"), "a1b1");
  EXPECT_EQ(replace_all("abc", "", "z"), "abc");
}

TEST(Strings, FormatDoubleRoundTrips) {
  for (double v : {1.0, -0.0, 3.14159e300, 5e-324, 1976157359951.6069}) {
    // strtod, not std::stod: stod throws out_of_range on subnormal results.
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
}

TEST(Strings, FormatThousands) {
  EXPECT_EQ(format_thousands(0), "0");
  EXPECT_EQ(format_thousands(999), "999");
  EXPECT_EQ(format_thousands(1000), "1,000");
  EXPECT_EQ(format_thousands(85366729), "85,366,729");
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(population_stddev(xs), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 20.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, GeomeanAndNonPositiveGuard) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{1.0, 0.0}), 0.0);
}

// ---------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Name", "N"});
  t.set_alignment({Align::Left, Align::Right});
  t.add_row({"gcc", "10"});
  t.add_row({"clang", "7"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name  | "), std::string::npos);
  EXPECT_NE(out.find("gcc   | 10"), std::string::npos);
  EXPECT_NE(out.find("clang |  7"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

// ---------------------------------------------------------------- json -----

TEST(Json, ObjectsArraysAndEscaping) {
  JsonWriter j;
  j.begin_object();
  j.key("name").value("line\n\"quoted\"");
  j.key("xs").begin_array().value(std::int64_t{1}).value(2.5).value(true).null().end_array();
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"name\":\"line\\n\\\"quoted\\\"\",\"xs\":[1,2.5,true,null]}");
}

TEST(Json, NonFiniteNumbersEncodeAsStrings) {
  JsonWriter j;
  j.begin_array();
  j.value(std::nan(""));
  j.value(HUGE_VAL);
  j.end_array();
  EXPECT_EQ(j.str(), "[\"nan\",\"inf\"]");
}

TEST(Json, NestedObjects) {
  JsonWriter j;
  j.begin_object();
  j.key("a").begin_object().key("b").value(std::int64_t{1}).end_object();
  j.key("c").value(std::int64_t{2});
  j.end_object();
  EXPECT_EQ(j.str(), "{\"a\":{\"b\":1},\"c\":2}");
}

}  // namespace
}  // namespace ompfuzz
