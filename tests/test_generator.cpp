// Tests for the random program generator (Sections III-C..III-G).
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "core/generator.hpp"
#include "core/race_checker.hpp"
#include "emit/codegen.hpp"

namespace ompfuzz::core {
namespace {

using ast::Expr;
using ast::Program;
using ast::Stmt;

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_threads = 4;
  cfg.max_loop_trip_count = 20;
  return cfg;
}

TEST(Generator, DeterministicForSameSeed) {
  const ProgramGenerator gen(small_config());
  const auto a = gen.generate("t", 123);
  const auto b = gen.generate("t", 123);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(emit::emit_translation_unit(a), emit::emit_translation_unit(b));
}

TEST(Generator, DifferentSeedsProduceDifferentPrograms) {
  const ProgramGenerator gen(small_config());
  std::set<std::uint64_t> fingerprints;
  for (int s = 0; s < 30; ++s) {
    fingerprints.insert(gen.generate("t", 9000 + s).fingerprint());
  }
  EXPECT_GE(fingerprints.size(), 29u);  // collisions should be near-impossible
}

// ------------------------------------------------ fingerprint stability ----
//
// The persistent result store addresses cached runs by Program::fingerprint,
// so the value must be pinned: a silent change would orphan every store on
// disk (annoying), and a fingerprint that skips an emitted structural field
// would *alias* distinct programs (a stale-cache correctness bug).

constexpr std::array<std::uint64_t, 3> kGoldenSeeds = {20240611, 1, 424242};
constexpr std::array<std::uint64_t, 3> kGoldenFingerprints = {
    0x8412101c254f44a8ULL,  // seed 20240611
    0xbdb2809bb74d200cULL,  // seed 1
    0x07b7117bd767f921ULL,  // seed 424242
};

std::uint64_t golden_fingerprint(std::uint64_t seed) {
  const ProgramGenerator gen(small_config());
  return gen.generate("golden", seed).fingerprint();
}

TEST(FingerprintGolden, SeededValuesArePinned) {
  for (std::size_t i = 0; i < kGoldenSeeds.size(); ++i) {
    EXPECT_EQ(golden_fingerprint(kGoldenSeeds[i]), kGoldenFingerprints[i])
        << "seed " << kGoldenSeeds[i]
        << ": Program::fingerprint changed — bump the store format / expect "
           "every persistent result store to go cold, and update the goldens "
           "deliberately";
  }
}

TEST(FingerprintGolden, StableAcrossProcesses) {
  // Child mode: re-generate and print, then leave before gtest reports.
  // (Guards against any address- or process-dependent input sneaking into
  // the hash — exactly what a cross-process run cache cannot tolerate.)
  if (std::getenv("OMPFUZZ_FINGERPRINT_CHILD") != nullptr) {
    for (std::size_t i = 0; i < kGoldenSeeds.size(); ++i) {
      std::printf("fingerprint %llu %016llx\n",
                  static_cast<unsigned long long>(kGoldenSeeds[i]),
                  static_cast<unsigned long long>(
                      golden_fingerprint(kGoldenSeeds[i])));
    }
    std::fflush(stdout);
    std::_Exit(0);
  }

  // Resolve our own binary: /proc/self/exe inside the popen'd shell would
  // name the shell, not this test.
  char exe[4096];
  const ssize_t exe_len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(exe_len, 0);
  exe[exe_len] = '\0';
  const std::string command =
      "OMPFUZZ_FINGERPRINT_CHILD=1 '" + std::string(exe) +
      "' --gtest_filter=FingerprintGolden.StableAcrossProcesses 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::set<std::pair<std::uint64_t, std::uint64_t>> reported;
  char line[256];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    unsigned long long seed = 0, fp = 0;
    if (std::sscanf(line, "fingerprint %llu %llx", &seed, &fp) == 2) {
      reported.insert({seed, fp});
    }
  }
  ASSERT_EQ(pclose(pipe), 0);
  ASSERT_EQ(reported.size(), kGoldenSeeds.size());
  for (std::size_t i = 0; i < kGoldenSeeds.size(); ++i) {
    EXPECT_TRUE(reported.contains({kGoldenSeeds[i], kGoldenFingerprints[i]}))
        << "child process re-hash of seed " << kGoldenSeeds[i]
        << " does not match the in-process fingerprint";
  }
}

TEST(FingerprintGolden, CoversEmittedStructuralFields) {
  using ast::VarDecl;
  using ast::VarKind;
  using ast::VarRole;
  using ast::FpWidth;

  // Parameter order shapes the emitted compute() signature and main()'s
  // argv parsing — regression for a fingerprint that skipped params.
  const auto make = [](bool swap_params) {
    Program prog;
    prog.set_name("p");
    const auto a = prog.add_var({"a", VarKind::FpScalar, VarRole::Param,
                                 FpWidth::F64, 0});
    const auto b = prog.add_var({"b", VarKind::FpScalar, VarRole::Param,
                                 FpWidth::F64, 0});
    const auto comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp,
                                    FpWidth::F64, 0});
    prog.set_comp(comp);
    if (swap_params) {
      prog.add_param(b);
      prog.add_param(a);
    } else {
      prog.add_param(a);
      prog.add_param(b);
    }
    prog.body().stmts.push_back(Stmt::assign(
        ast::LValue{comp, nullptr}, ast::AssignOp::AddAssign, Expr::var(a)));
    return prog;
  };
  const auto ab = make(false);
  const auto ba = make(true);
  ASSERT_NE(emit::emit_translation_unit(ab), emit::emit_translation_unit(ba));
  EXPECT_NE(ab.fingerprint(), ba.fingerprint())
      << "fingerprint ignores parameter order but codegen does not";

  // Explicit grammar parentheses are emitted — two trees differing only in
  // the paren flag must not share a fingerprint.
  const auto make_paren = [](bool paren) {
    Program prog;
    prog.set_name("p");
    const auto a = prog.add_var({"a", VarKind::FpScalar, VarRole::Param,
                                 FpWidth::F64, 0});
    const auto comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp,
                                    FpWidth::F64, 0});
    prog.set_comp(comp);
    prog.add_param(a);
    prog.body().stmts.push_back(Stmt::assign(
        ast::LValue{comp, nullptr}, ast::AssignOp::Assign,
        Expr::binary(ast::BinOp::Add, Expr::var(a), Expr::fp_const(1.0), paren)));
    return prog;
  };
  const auto plain = make_paren(false);
  const auto parenthesized = make_paren(true);
  ASSERT_NE(emit::emit_translation_unit(plain),
            emit::emit_translation_unit(parenthesized));
  EXPECT_NE(plain.fingerprint(), parenthesized.fingerprint())
      << "fingerprint ignores explicit parentheses but codegen emits them";
}

// Feature-enabled config: all four scenario-surface gates on.
GeneratorConfig feature_config() {
  GeneratorConfig cfg = small_config();
  cfg.enable_atomic = true;
  cfg.enable_single = true;
  cfg.enable_master = true;
  cfg.enable_schedule = true;
  return cfg;
}

std::uint64_t feature_fingerprint(std::uint64_t seed) {
  const ProgramGenerator gen(feature_config());
  return gen.generate("feature", seed).fingerprint();
}

TEST(FingerprintGolden, CoversFeatureConstructFields) {
  using ast::FpWidth;
  using ast::ScheduleKind;
  using ast::VarKind;
  using ast::VarRole;

  // Schedule clause fields shape the emitted "#pragma omp for" line, so two
  // loops differing only in schedule kind or chunk must not alias in the
  // run cache.
  const auto make_loop = [](ScheduleKind schedule, int chunk) {
    Program prog;
    prog.set_name("p");
    const auto comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp,
                                    FpWidth::F64, 0});
    prog.set_comp(comp);
    const auto i = prog.add_var({"i_1", VarKind::IntScalar, VarRole::LoopIndex,
                                 FpWidth::F64, 0});
    ast::Block body;
    body.stmts.push_back(Stmt::assign(ast::LValue{comp, nullptr},
                                      ast::AssignOp::AddAssign,
                                      Expr::fp_const(1.0)));
    prog.body().stmts.push_back(Stmt::for_loop(
        i, Expr::int_const(8), std::move(body), /*omp_for=*/true, schedule,
        chunk));
    return prog;
  };
  const auto none = make_loop(ScheduleKind::None, 0);
  const auto st0 = make_loop(ScheduleKind::Static, 0);
  const auto st2 = make_loop(ScheduleKind::Static, 2);
  const auto dy2 = make_loop(ScheduleKind::Dynamic, 2);
  EXPECT_NE(none.fingerprint(), st0.fingerprint());
  EXPECT_NE(st0.fingerprint(), st2.fingerprint());
  EXPECT_NE(st2.fingerprint(), dy2.fingerprint());

  // An atomic update and the identical plain assignment emit differently.
  const auto make_update = [](bool atomic) {
    Program prog;
    prog.set_name("p");
    const auto comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp,
                                    FpWidth::F64, 0});
    prog.set_comp(comp);
    auto value = Expr::fp_const(2.0);
    prog.body().stmts.push_back(
        atomic ? Stmt::omp_atomic(ast::LValue{comp, nullptr},
                                  ast::AssignOp::AddAssign, std::move(value))
               : Stmt::assign(ast::LValue{comp, nullptr},
                              ast::AssignOp::AddAssign, std::move(value)));
    return prog;
  };
  EXPECT_NE(make_update(true).fingerprint(), make_update(false).fingerprint());

  // single / master / critical wrap the same body but emit different
  // pragmas; all three must hash apart.
  const auto make_wrapped = [](int which) {
    Program prog;
    prog.set_name("p");
    const auto comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp,
                                    FpWidth::F64, 0});
    prog.set_comp(comp);
    ast::Block body;
    body.stmts.push_back(Stmt::assign(ast::LValue{comp, nullptr},
                                      ast::AssignOp::AddAssign,
                                      Expr::fp_const(1.0)));
    prog.body().stmts.push_back(
        which == 0   ? Stmt::omp_single(std::move(body))
        : which == 1 ? Stmt::omp_master(std::move(body))
                     : Stmt::omp_critical(std::move(body)));
    return prog;
  };
  const auto single_fp = make_wrapped(0).fingerprint();
  const auto master_fp = make_wrapped(1).fingerprint();
  const auto critical_fp = make_wrapped(2).fingerprint();
  EXPECT_NE(single_fp, master_fp);
  EXPECT_NE(single_fp, critical_fp);
  EXPECT_NE(master_fp, critical_fp);
}

TEST(FingerprintGolden, FeatureProgramsStableAcrossProcesses) {
  // Same cross-process guarantee as StableAcrossProcesses, but for the
  // feature-enabled stream: the store must be able to re-hash a
  // feature-gated program in a different process and hit the same key.
  constexpr std::array<std::uint64_t, 3> kSeeds = {7, 8, 9};
  if (std::getenv("OMPFUZZ_FEATURE_FINGERPRINT_CHILD") != nullptr) {
    for (const std::uint64_t seed : kSeeds) {
      std::printf("fingerprint %llu %016llx\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(feature_fingerprint(seed)));
    }
    std::fflush(stdout);
    std::_Exit(0);
  }

  char exe[4096];
  const ssize_t exe_len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(exe_len, 0);
  exe[exe_len] = '\0';
  const std::string command =
      "OMPFUZZ_FEATURE_FINGERPRINT_CHILD=1 '" + std::string(exe) +
      "' --gtest_filter=FingerprintGolden.FeatureProgramsStableAcrossProcesses"
      " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::set<std::pair<std::uint64_t, std::uint64_t>> reported;
  char line[256];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    unsigned long long seed = 0, fp = 0;
    if (std::sscanf(line, "fingerprint %llu %llx", &seed, &fp) == 2) {
      reported.insert({seed, fp});
    }
  }
  ASSERT_EQ(pclose(pipe), 0);
  ASSERT_EQ(reported.size(), kSeeds.size());
  for (const std::uint64_t seed : kSeeds) {
    EXPECT_TRUE(reported.contains({seed, feature_fingerprint(seed)}))
        << "child re-hash of feature-enabled seed " << seed << " diverged";
  }
}

TEST(Generator, DefaultConfigNeverEmitsFeatureConstructs) {
  // The compatibility guarantee behind the gates: with every feature off
  // the draft stream contains none of the new constructs (and, per the
  // pinned goldens above, is bit-identical to the pre-feature stream).
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 80; ++s) {
    const auto prog = gen.generate("t", 7000 + s);
    const auto f = ast::analyze(prog);
    EXPECT_EQ(f.num_atomics, 0) << "seed " << 7000 + s;
    EXPECT_EQ(f.num_singles, 0) << "seed " << 7000 + s;
    EXPECT_EQ(f.num_masters, 0) << "seed " << 7000 + s;
    EXPECT_EQ(f.num_scheduled_loops, 0) << "seed " << 7000 + s;
  }
}

TEST(Generator, FeatureConstructsAppearValidateAndStayRaceFree) {
  const ProgramGenerator gen(feature_config());
  int atomics = 0, singles = 0, masters = 0, scheduled = 0;
  for (int s = 0; s < 150; ++s) {
    const auto prog = gen.generate("t", 8000 + s);
    EXPECT_NO_THROW(prog.validate()) << "seed " << 8000 + s;
    EXPECT_TRUE(check_races(prog).race_free()) << "seed " << 8000 + s;
    const auto f = ast::analyze(prog);
    atomics += f.num_atomics;
    singles += f.num_singles;
    masters += f.num_masters;
    scheduled += f.num_scheduled_loops;
  }
  // Each family must actually show up across the sweep — a gate that never
  // fires is indistinguishable from a broken one.
  EXPECT_GT(atomics, 0);
  EXPECT_GT(singles, 0);
  EXPECT_GT(masters, 0);
  EXPECT_GT(scheduled, 0);
}

TEST(Generator, GenerationIsIndependentOfCallOrder) {
  const ProgramGenerator gen(small_config());
  const auto direct = gen.generate("t", 77);
  (void)gen.generate("other", 5);
  const auto after = gen.generate("t", 77);
  EXPECT_EQ(direct.fingerprint(), after.fingerprint());
}

TEST(Generator, ProgramsValidate) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 100; ++s) {
    EXPECT_NO_THROW(gen.generate("t", 100 + s).validate());
  }
}

TEST(Generator, EveryProgramWritesComp) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 400 + s);
    bool writes_comp = false;
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::Assign && st.target.var == prog.comp() &&
          !st.target.is_array_element()) {
        writes_comp = true;
      }
    });
    EXPECT_TRUE(writes_comp) << "seed " << 400 + s;
  }
}

TEST(Generator, RespectsNumThreadsInClauses) {
  GeneratorConfig cfg = small_config();
  cfg.num_threads = 7;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 500 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::OmpParallel) {
        EXPECT_EQ(st.clauses.num_threads, 7);
      }
    });
  }
}

TEST(Generator, LoopBoundsWithinConfiguredRange) {
  GeneratorConfig cfg = small_config();
  cfg.max_loop_trip_count = 50;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 600 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::For &&
          st.loop_bound->kind() == Expr::Kind::IntConst) {
        EXPECT_GE(st.loop_bound->int_value(), 1);
        EXPECT_LE(st.loop_bound->int_value(), 50);
      }
    });
  }
}

TEST(Generator, ArraySubscriptConstantsInBounds) {
  GeneratorConfig cfg = small_config();
  cfg.array_size = 16;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 700 + s);
    ast::walk_exprs(prog.body(), [&](const Expr& e) {
      if (e.kind() == Expr::Kind::ArrayRef &&
          e.index().kind() == Expr::Kind::IntConst) {
        EXPECT_GE(e.index().int_value(), 0);
        EXPECT_LT(e.index().int_value(), 16);
      }
      if (e.kind() == Expr::Kind::Binary && e.bin_op() == ast::BinOp::Mod) {
        EXPECT_EQ(e.rhs().kind(), Expr::Kind::IntConst);
        EXPECT_GT(e.rhs().int_value(), 0);  // never modulo by zero
      }
    });
  }
}

TEST(Generator, NoMathCallsWhenDisallowed) {
  GeneratorConfig cfg = small_config();
  cfg.math_func_allowed = false;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 800 + s);
    EXPECT_EQ(ast::analyze(prog).num_math_calls, 0);
  }
}

TEST(Generator, MathProbabilityOneProducesCalls) {
  GeneratorConfig cfg = small_config();
  cfg.math_func_probability = 1.0;
  const ProgramGenerator gen(cfg);
  int with_math = 0;
  for (int s = 0; s < 20; ++s) {
    with_math += (ast::analyze(gen.generate("t", 900 + s)).num_math_calls > 0);
  }
  EXPECT_EQ(with_math, 20);
}

TEST(Generator, PrivatesAreInitializedInPreamble) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1000 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      std::set<ast::VarId> assigned;
      for (const auto& inner : st.body.stmts) {
        if (inner->kind == Stmt::Kind::Assign &&
            !inner->target.is_array_element()) {
          assigned.insert(inner->target.var);
        }
        if (inner->kind == Stmt::Kind::For) break;
      }
      for (ast::VarId v : st.clauses.privates) {
        EXPECT_TRUE(assigned.contains(v))
            << "private " << prog.var(v).name << " not initialized, seed "
            << 1000 + s;
      }
    });
  }
}

TEST(Generator, ClausesNeverContainComp) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1100 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      for (ast::VarId v : st.clauses.privates) EXPECT_NE(v, prog.comp());
      for (ast::VarId v : st.clauses.firstprivates) EXPECT_NE(v, prog.comp());
    });
  }
}

TEST(Generator, PrivateAndFirstprivateAreDisjoint) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1200 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      std::set<ast::VarId> privates(st.clauses.privates.begin(),
                                    st.clauses.privates.end());
      for (ast::VarId v : st.clauses.firstprivates) {
        EXPECT_FALSE(privates.contains(v));
      }
    });
  }
}

TEST(Generator, ReductionUpdatesUseMatchingOperator) {
  GeneratorConfig cfg = small_config();
  cfg.p_reduction = 1.0;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1300 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& region) {
      if (region.kind != Stmt::Kind::OmpParallel) return;
      ASSERT_TRUE(region.clauses.reduction.has_value());
      const auto op = *region.clauses.reduction;
      ast::walk_stmts(region.body, [&](const Stmt& st) {
        if (st.kind == Stmt::Kind::Assign && st.target.var == prog.comp()) {
          if (op == ast::ReductionOp::Sum) {
            EXPECT_TRUE(st.assign_op == ast::AssignOp::AddAssign ||
                        st.assign_op == ast::AssignOp::SubAssign);
          } else {
            EXPECT_EQ(st.assign_op, ast::AssignOp::MulAssign);
          }
        }
      });
    });
  }
}

TEST(Generator, DepthScaledTripCountsLimitTotalIterations) {
  GeneratorConfig cfg = small_config();
  cfg.max_loop_trip_count = 100;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 30; ++s) {
    const auto prog = gen.generate("t", 1400 + s);
    // Walk loops tracking depth: a loop nested under d others must have a
    // static bound <= max / 3^d.
    std::function<void(const ast::Block&, int)> visit = [&](const ast::Block& b,
                                                            int loop_depth) {
      for (const auto& st : b.stmts) {
        switch (st->kind) {
          case Stmt::Kind::For: {
            if (st->loop_bound->kind() == Expr::Kind::IntConst) {
              std::int64_t cap = 100;
              for (int d = 0; d < loop_depth; ++d) cap /= 3;
              cap = std::max<std::int64_t>(cap, 2);
              EXPECT_LE(st->loop_bound->int_value(), cap)
                  << "depth " << loop_depth << " seed " << 1400 + s;
            }
            visit(st->body, loop_depth + 1);
            break;
          }
          case Stmt::Kind::If:
          case Stmt::Kind::OmpParallel:
          case Stmt::Kind::OmpCritical:
            visit(st->body, loop_depth);
            break;
          default:
            break;
        }
      }
    };
    visit(prog.body(), 0);
  }
}

// Property sweep: race freedom and validity across many seeds and configs.
class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, RaceFreeAndValid) {
  GeneratorConfig cfg = small_config();
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 50; ++s) {
    const auto prog = gen.generate("t", GetParam() * 10000 + s);
    const auto report = check_races(prog);
    EXPECT_TRUE(report.race_free())
        << "seed " << GetParam() * 10000 + s << ": "
        << to_string(report.findings[0].kind) << " on "
        << report.findings[0].variable;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ompfuzz::core
