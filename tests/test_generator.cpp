// Tests for the random program generator (Sections III-C..III-G).
#include <gtest/gtest.h>

#include <set>

#include "core/generator.hpp"
#include "core/race_checker.hpp"
#include "emit/codegen.hpp"

namespace ompfuzz::core {
namespace {

using ast::Expr;
using ast::Program;
using ast::Stmt;

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_threads = 4;
  cfg.max_loop_trip_count = 20;
  return cfg;
}

TEST(Generator, DeterministicForSameSeed) {
  const ProgramGenerator gen(small_config());
  const auto a = gen.generate("t", 123);
  const auto b = gen.generate("t", 123);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(emit::emit_translation_unit(a), emit::emit_translation_unit(b));
}

TEST(Generator, DifferentSeedsProduceDifferentPrograms) {
  const ProgramGenerator gen(small_config());
  std::set<std::uint64_t> fingerprints;
  for (int s = 0; s < 30; ++s) {
    fingerprints.insert(gen.generate("t", 9000 + s).fingerprint());
  }
  EXPECT_GE(fingerprints.size(), 29u);  // collisions should be near-impossible
}

TEST(Generator, GenerationIsIndependentOfCallOrder) {
  const ProgramGenerator gen(small_config());
  const auto direct = gen.generate("t", 77);
  (void)gen.generate("other", 5);
  const auto after = gen.generate("t", 77);
  EXPECT_EQ(direct.fingerprint(), after.fingerprint());
}

TEST(Generator, ProgramsValidate) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 100; ++s) {
    EXPECT_NO_THROW(gen.generate("t", 100 + s).validate());
  }
}

TEST(Generator, EveryProgramWritesComp) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 400 + s);
    bool writes_comp = false;
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::Assign && st.target.var == prog.comp() &&
          !st.target.is_array_element()) {
        writes_comp = true;
      }
    });
    EXPECT_TRUE(writes_comp) << "seed " << 400 + s;
  }
}

TEST(Generator, RespectsNumThreadsInClauses) {
  GeneratorConfig cfg = small_config();
  cfg.num_threads = 7;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 500 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::OmpParallel) {
        EXPECT_EQ(st.clauses.num_threads, 7);
      }
    });
  }
}

TEST(Generator, LoopBoundsWithinConfiguredRange) {
  GeneratorConfig cfg = small_config();
  cfg.max_loop_trip_count = 50;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 600 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::For &&
          st.loop_bound->kind() == Expr::Kind::IntConst) {
        EXPECT_GE(st.loop_bound->int_value(), 1);
        EXPECT_LE(st.loop_bound->int_value(), 50);
      }
    });
  }
}

TEST(Generator, ArraySubscriptConstantsInBounds) {
  GeneratorConfig cfg = small_config();
  cfg.array_size = 16;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 700 + s);
    ast::walk_exprs(prog.body(), [&](const Expr& e) {
      if (e.kind() == Expr::Kind::ArrayRef &&
          e.index().kind() == Expr::Kind::IntConst) {
        EXPECT_GE(e.index().int_value(), 0);
        EXPECT_LT(e.index().int_value(), 16);
      }
      if (e.kind() == Expr::Kind::Binary && e.bin_op() == ast::BinOp::Mod) {
        EXPECT_EQ(e.rhs().kind(), Expr::Kind::IntConst);
        EXPECT_GT(e.rhs().int_value(), 0);  // never modulo by zero
      }
    });
  }
}

TEST(Generator, NoMathCallsWhenDisallowed) {
  GeneratorConfig cfg = small_config();
  cfg.math_func_allowed = false;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 40; ++s) {
    const auto prog = gen.generate("t", 800 + s);
    EXPECT_EQ(ast::analyze(prog).num_math_calls, 0);
  }
}

TEST(Generator, MathProbabilityOneProducesCalls) {
  GeneratorConfig cfg = small_config();
  cfg.math_func_probability = 1.0;
  const ProgramGenerator gen(cfg);
  int with_math = 0;
  for (int s = 0; s < 20; ++s) {
    with_math += (ast::analyze(gen.generate("t", 900 + s)).num_math_calls > 0);
  }
  EXPECT_EQ(with_math, 20);
}

TEST(Generator, PrivatesAreInitializedInPreamble) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1000 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      std::set<ast::VarId> assigned;
      for (const auto& inner : st.body.stmts) {
        if (inner->kind == Stmt::Kind::Assign &&
            !inner->target.is_array_element()) {
          assigned.insert(inner->target.var);
        }
        if (inner->kind == Stmt::Kind::For) break;
      }
      for (ast::VarId v : st.clauses.privates) {
        EXPECT_TRUE(assigned.contains(v))
            << "private " << prog.var(v).name << " not initialized, seed "
            << 1000 + s;
      }
    });
  }
}

TEST(Generator, ClausesNeverContainComp) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1100 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      for (ast::VarId v : st.clauses.privates) EXPECT_NE(v, prog.comp());
      for (ast::VarId v : st.clauses.firstprivates) EXPECT_NE(v, prog.comp());
    });
  }
}

TEST(Generator, PrivateAndFirstprivateAreDisjoint) {
  const ProgramGenerator gen(small_config());
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1200 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& st) {
      if (st.kind != Stmt::Kind::OmpParallel) return;
      std::set<ast::VarId> privates(st.clauses.privates.begin(),
                                    st.clauses.privates.end());
      for (ast::VarId v : st.clauses.firstprivates) {
        EXPECT_FALSE(privates.contains(v));
      }
    });
  }
}

TEST(Generator, ReductionUpdatesUseMatchingOperator) {
  GeneratorConfig cfg = small_config();
  cfg.p_reduction = 1.0;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 60; ++s) {
    const auto prog = gen.generate("t", 1300 + s);
    ast::walk_stmts(prog.body(), [&](const Stmt& region) {
      if (region.kind != Stmt::Kind::OmpParallel) return;
      ASSERT_TRUE(region.clauses.reduction.has_value());
      const auto op = *region.clauses.reduction;
      ast::walk_stmts(region.body, [&](const Stmt& st) {
        if (st.kind == Stmt::Kind::Assign && st.target.var == prog.comp()) {
          if (op == ast::ReductionOp::Sum) {
            EXPECT_TRUE(st.assign_op == ast::AssignOp::AddAssign ||
                        st.assign_op == ast::AssignOp::SubAssign);
          } else {
            EXPECT_EQ(st.assign_op, ast::AssignOp::MulAssign);
          }
        }
      });
    });
  }
}

TEST(Generator, DepthScaledTripCountsLimitTotalIterations) {
  GeneratorConfig cfg = small_config();
  cfg.max_loop_trip_count = 100;
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 30; ++s) {
    const auto prog = gen.generate("t", 1400 + s);
    // Walk loops tracking depth: a loop nested under d others must have a
    // static bound <= max / 3^d.
    std::function<void(const ast::Block&, int)> visit = [&](const ast::Block& b,
                                                            int loop_depth) {
      for (const auto& st : b.stmts) {
        switch (st->kind) {
          case Stmt::Kind::For: {
            if (st->loop_bound->kind() == Expr::Kind::IntConst) {
              std::int64_t cap = 100;
              for (int d = 0; d < loop_depth; ++d) cap /= 3;
              cap = std::max<std::int64_t>(cap, 2);
              EXPECT_LE(st->loop_bound->int_value(), cap)
                  << "depth " << loop_depth << " seed " << 1400 + s;
            }
            visit(st->body, loop_depth + 1);
            break;
          }
          case Stmt::Kind::If:
          case Stmt::Kind::OmpParallel:
          case Stmt::Kind::OmpCritical:
            visit(st->body, loop_depth);
            break;
          default:
            break;
        }
      }
    };
    visit(prog.body(), 0);
  }
}

// Property sweep: race freedom and validity across many seeds and configs.
class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, RaceFreeAndValid) {
  GeneratorConfig cfg = small_config();
  const ProgramGenerator gen(cfg);
  for (int s = 0; s < 50; ++s) {
    const auto prog = gen.generate("t", GetParam() * 10000 + s);
    const auto report = check_races(prog);
    EXPECT_TRUE(report.race_free())
        << "seed " << GetParam() * 10000 + s << ": "
        << to_string(report.findings[0].kind) << " on "
        << report.findings[0].variable;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ompfuzz::core
