// Unit tests for floating-point input generation (paper Section III-D).
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>

#include "fp/fp_class.hpp"
#include "fp/input_gen.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ompfuzz::fp {
namespace {

// --------------------------------------------------------- classification --

TEST(FpClass, ClassifiesIeeeCategories) {
  EXPECT_EQ(classify(0.0), FpClass::Zero);
  EXPECT_EQ(classify(-0.0), FpClass::Zero);
  EXPECT_EQ(classify(1.0), FpClass::Normal);
  EXPECT_EQ(classify(5e-324), FpClass::Subnormal);        // min subnormal
  EXPECT_EQ(classify(DBL_MIN / 2.0), FpClass::Subnormal);
  EXPECT_EQ(classify(DBL_MAX), FpClass::AlmostInfinity);
  EXPECT_EQ(classify(1e307), FpClass::AlmostInfinity);
  EXPECT_EQ(classify(DBL_MIN * 2.0), FpClass::AlmostSubnormal);
}

TEST(FpClass, FloatClassification) {
  EXPECT_EQ(classify(0.0f), FpClass::Zero);
  EXPECT_EQ(classify(1.0f), FpClass::Normal);
  EXPECT_EQ(classify(FLT_MIN / 4.0f), FpClass::Subnormal);
  EXPECT_EQ(classify(FLT_MAX), FpClass::AlmostInfinity);
  EXPECT_EQ(classify(FLT_MIN * 2.0f), FpClass::AlmostSubnormal);
}

TEST(FpClass, NamesAreStable) {
  EXPECT_STREQ(to_string(FpClass::Normal), "normal");
  EXPECT_STREQ(to_string(FpClass::AlmostSubnormal), "almost_subnormal");
}

TEST(FpClass, IndexRoundTrip) {
  for (int i = 0; i < kNumFpClasses; ++i) {
    EXPECT_EQ(static_cast<int>(fp_class_from_index(i)), i);
  }
  EXPECT_THROW((void)fp_class_from_index(kNumFpClasses), Error);
  EXPECT_THROW((void)fp_class_from_index(-1), Error);
}

// Property: every generated value classifies back into the class it was
// drawn from — for all five classes, both widths, across many draws.
class FpClassRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FpClassRoundTrip, DoubleGenerationMatchesClassification) {
  const FpClass c = fp_class_from_index(GetParam());
  RandomEngine rng(1000 + GetParam());
  for (int i = 0; i < 500; ++i) {
    const double v = random_double(c, rng);
    EXPECT_EQ(classify(v), c) << "value " << v;
    EXPECT_FALSE(std::isnan(v));
    EXPECT_FALSE(std::isinf(v));
  }
}

TEST_P(FpClassRoundTrip, FloatGenerationMatchesClassification) {
  const FpClass c = fp_class_from_index(GetParam());
  RandomEngine rng(2000 + GetParam());
  for (int i = 0; i < 500; ++i) {
    const float v = random_float(c, rng);
    EXPECT_EQ(classify(v), c) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, FpClassRoundTrip,
                         ::testing::Range(0, kNumFpClasses),
                         [](const auto& info) {
                           return to_string(fp_class_from_index(info.param));
                         });

TEST(FpClass, ZeroDrawsBothSigns) {
  RandomEngine rng(5);
  bool pos = false, neg = false;
  for (int i = 0; i < 200; ++i) {
    const double v = random_double(FpClass::Zero, rng);
    (std::signbit(v) ? neg : pos) = true;
  }
  EXPECT_TRUE(pos);
  EXPECT_TRUE(neg);
}

TEST(FpClass, ExactStringRoundTripsBits) {
  RandomEngine rng(6);
  for (int c = 0; c < kNumFpClasses; ++c) {
    for (int i = 0; i < 100; ++i) {
      const double v = random_double(fp_class_from_index(c), rng);
      const double back = from_exact_string(to_exact_string(v));
      EXPECT_EQ(std::signbit(back), std::signbit(v));
      EXPECT_EQ(back, v);
    }
  }
}

// --------------------------------------------------------- input gen ------

std::vector<ParamSpec> sample_signature() {
  return {
      {"n", ParamKind::Int, FpWidth::F64, 0},
      {"x", ParamKind::Scalar, FpWidth::F64, 0},
      {"y", ParamKind::Scalar, FpWidth::F32, 0},
      {"arr", ParamKind::Array, FpWidth::F32, 100},
  };
}

TEST(InputGen, GeneratesOneValuePerParam) {
  RandomEngine rng(7);
  const InputGenerator gen;
  const auto sig = sample_signature();
  const InputSet set = gen.generate(sig, rng);
  ASSERT_EQ(set.values.size(), sig.size());
  EXPECT_EQ(set.values[0].kind, ParamKind::Int);
  EXPECT_GE(set.values[0].int_value, 1);
  EXPECT_LE(set.values[0].int_value, 1000);
}

TEST(InputGen, FloatParamsHoldExactFloats) {
  RandomEngine rng(8);
  const InputGenerator gen;
  const auto sig = sample_signature();
  for (int i = 0; i < 50; ++i) {
    const InputSet set = gen.generate(sig, rng);
    const double y = set.values[2].fp_value;
    EXPECT_EQ(static_cast<double>(static_cast<float>(y)), y)
        << "float param value must be exactly representable as float";
  }
}

TEST(InputGen, ArgvRoundTripIsBitExact) {
  RandomEngine rng(9);
  const InputGenerator gen;
  const auto sig = sample_signature();
  for (int i = 0; i < 100; ++i) {
    const InputSet set = gen.generate(sig, rng);
    const auto argv = set.to_argv();
    const InputSet back = InputGenerator::parse(sig, argv);
    ASSERT_EQ(back.values.size(), set.values.size());
    for (std::size_t k = 0; k < set.values.size(); ++k) {
      EXPECT_EQ(back.values[k].int_value, set.values[k].int_value);
      EXPECT_EQ(back.values[k].fp_value, set.values[k].fp_value)
          << "param " << k;
      EXPECT_EQ(std::signbit(back.values[k].fp_value),
                std::signbit(set.values[k].fp_value));
    }
    EXPECT_EQ(back.hash(), set.hash());
  }
}

TEST(InputGen, ParseRejectsWrongArity) {
  const auto sig = sample_signature();
  const std::vector<std::string> argv = {"1"};
  EXPECT_THROW((void)InputGenerator::parse(sig, argv), Error);
}

TEST(InputGen, ParseRejectsBadIntegers) {
  const std::vector<ParamSpec> sig = {{"n", ParamKind::Int, FpWidth::F64, 0}};
  const std::vector<std::string> argv = {"12x"};
  EXPECT_THROW((void)InputGenerator::parse(sig, argv), Error);
}

TEST(InputGen, TripCountBoundsRespected) {
  InputGenOptions opt;
  opt.min_trip_count = 10;
  opt.max_trip_count = 20;
  const InputGenerator gen(opt);
  const std::vector<ParamSpec> sig = {{"n", ParamKind::Int, FpWidth::F64, 0}};
  RandomEngine rng(10);
  for (int i = 0; i < 200; ++i) {
    const auto set = gen.generate(sig, rng);
    EXPECT_GE(set.values[0].int_value, 10);
    EXPECT_LE(set.values[0].int_value, 20);
  }
}

TEST(InputGen, BadOptionsThrow) {
  InputGenOptions opt;
  opt.min_trip_count = 0;
  EXPECT_THROW(InputGenerator{opt}, Error);
  opt = InputGenOptions{};
  opt.max_trip_count = 0;
  EXPECT_THROW(InputGenerator{opt}, Error);
}

TEST(InputGen, ClassWeightsSteerGeneration) {
  InputGenOptions opt;
  opt.class_weights = {0.0, 1.0, 0.0, 0.0, 0.0};  // subnormal only
  const InputGenerator gen(opt);
  const std::vector<ParamSpec> sig = {{"x", ParamKind::Scalar, FpWidth::F64, 0}};
  RandomEngine rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto set = gen.generate(sig, rng);
    EXPECT_EQ(set.values[0].fp_class, FpClass::Subnormal);
    EXPECT_EQ(classify(set.values[0].fp_value), FpClass::Subnormal);
  }
}

TEST(InputGen, HashDistinguishesInputs) {
  RandomEngine rng(12);
  const InputGenerator gen;
  const auto sig = sample_signature();
  const auto a = gen.generate(sig, rng);
  const auto b = gen.generate(sig, rng);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(InputGen, WidthKeywords) {
  EXPECT_STREQ(to_keyword(FpWidth::F32), "float");
  EXPECT_STREQ(to_keyword(FpWidth::F64), "double");
}

}  // namespace
}  // namespace ompfuzz::fp
