// Tests for the event-driven process pipeline (async_process.hpp): pool
// throughput beyond max_inflight, process-group timeout kills (the OpenMP
// grandchild leak regression), exclusive quiet-timing jobs, and the memoized
// PATH resolver.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/async_process.hpp"
#include "support/fault_injection.hpp"

namespace ompfuzz::harness {
namespace {

using Clock = std::chrono::steady_clock;

std::string temp_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/ompfuzz_ap_" +
                    std::to_string(getpid()) + "_" + std::to_string(counter++);
  mkdir(dir.c_str(), 0755);
  return dir;
}

void write_script(const std::string& path, const std::string& content) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
  }
  ASSERT_EQ(chmod(path.c_str(), 0755), 0);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// True once `pid` no longer exists as a live process (gone or zombie).
bool process_dead(pid_t pid) {
  if (kill(pid, 0) != 0) return errno == ESRCH;
  // Still signalable: it may be a zombie awaiting its reparented reap.
  const std::string stat = slurp("/proc/" + std::to_string(pid) + "/stat");
  const std::size_t paren = stat.rfind(')');
  if (paren == std::string::npos) return true;  // raced /proc teardown
  for (std::size_t i = paren + 1; i < stat.size(); ++i) {
    if (stat[i] == ' ') continue;
    return stat[i] == 'Z';
  }
  return true;
}

bool wait_until_dead(pid_t pid, std::chrono::milliseconds budget) {
  const auto deadline = Clock::now() + budget;
  while (Clock::now() < deadline) {
    if (process_dead(pid)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return process_dead(pid);
}

struct Interval {
  long long start = 0;
  long long end = 0;
};

Interval read_interval(const std::string& path) {
  Interval iv;
  std::istringstream in(slurp(path));
  in >> iv.start >> iv.end;
  return iv;
}

bool overlaps(const Interval& a, const Interval& b) {
  return a.start < b.end && b.start < a.end;
}

// ----------------------------------------------------------- pool basics ---

TEST(AsyncProcessPool, ClampsInflightAgainstFdLimit) {
  struct rlimit saved {};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
  // Lower only the soft limit: each in-flight child holds pipe fds, so an
  // unclamped max_inflight of 100000 would exhaust the table mid-batch.
  struct rlimit lowered = saved;
  lowered.rlim_cur = 256;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);
  {
    const AsyncProcessPool pool(100'000);
    // (256 - 64 reserved) / 3 fds per child = 64.
    EXPECT_EQ(pool.max_inflight(), 64u);
  }
  {
    // A request under the cap passes through untouched.
    const AsyncProcessPool pool(8);
    EXPECT_EQ(pool.max_inflight(), 8u);
  }
  {
    // The budget is process-wide: a second live pool only gets what the
    // first one's reservation left, so several pools (one per toolchain in
    // a multi-backend campaign) cannot jointly exhaust the fd table.
    const AsyncProcessPool first(32);   // reserves 96 of the 192-fd budget
    EXPECT_EQ(first.max_inflight(), 32u);
    const AsyncProcessPool second(100'000);
    EXPECT_EQ(second.max_inflight(), 32u);  // (192 - 96) / 3
  }
  {
    // Destroying the pools released their reservations.
    const AsyncProcessPool pool(100'000);
    EXPECT_EQ(pool.max_inflight(), 64u);
  }
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  // The default (0 = 2x hardware concurrency) is never clamped to zero even
  // when the limit leaves almost no child budget. 96 (not lower) keeps the
  // pool's own wake pipe constructible with the fds the test process
  // already holds open (gtest logs, TSan internals).
  lowered.rlim_cur = 96;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);
  {
    const AsyncProcessPool pool(0);
    EXPECT_GE(pool.max_inflight(), 1u);
    EXPECT_LE(pool.max_inflight(), 10u);  // (96 - 64) / 3
  }
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
}

TEST(AsyncProcessPool, CompletesManyJobsBeyondInflight) {
  AsyncProcessPool pool(3);
  EXPECT_EQ(pool.max_inflight(), 3u);
  std::vector<std::future<ProcessResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        pool.submit({{"/bin/echo", "job", std::to_string(i)}, 5'000, false}));
  }
  for (int i = 0; i < 12; ++i) {
    const ProcessResult r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.output, "job " + std::to_string(i) + "\n");
  }
}

TEST(AsyncProcessPool, ReportsExitCodesAndSignals) {
  AsyncProcessPool pool(4);
  auto ok = pool.submit({{"/bin/sh", "-c", "exit 3"}, 5'000, false});
  auto crash = pool.submit({{"/bin/sh", "-c", "kill -SEGV $$"}, 5'000, false});
  auto missing = pool.submit({{"/nonexistent/binary"}, 5'000, false});
  EXPECT_EQ(ok.get().exit_code, 3);
  const ProcessResult crashed = crash.get();
  EXPECT_TRUE(crashed.signaled);
  EXPECT_EQ(crashed.term_signal, SIGSEGV);
  EXPECT_NE(missing.get().exit_code, 0);
}

TEST(AsyncProcessPool, OverlapsChildrenUpToInflight) {
  // 8 children sleeping 250 ms through an 8-slot pool: serial execution would
  // take 2 s; require well under that (generous margin for loaded CI).
  AsyncProcessPool pool(8);
  const auto start = Clock::now();
  std::vector<std::future<ProcessResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit({{"/bin/sleep", "0.25"}, 10'000, false}));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().exit_code, 0);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_LT(elapsed.count(), 1'500) << "children did not overlap";
}

TEST(AsyncProcessPool, DestructorKillsInflightChildren) {
  const std::string dir = temp_dir();
  const std::string pid_file = dir + "/pid";
  const std::string script = dir + "/linger.sh";
  write_script(script, "#!/bin/sh\necho $$ > " + pid_file + "\nsleep 30\n");
  {
    AsyncProcessPool pool(2);
    pool.submit({{script}, 60'000, false}, nullptr);
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (slurp(pid_file).empty() && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }  // pool destructor: SIGKILL to the group
  const pid_t child = static_cast<pid_t>(std::stol("0" + slurp(pid_file)));
  ASSERT_GT(child, 0) << "child never started";
  EXPECT_TRUE(wait_until_dead(child, std::chrono::seconds(3)));
}

// ----------------------------------------------- process-group timeouts ----

/// Regression: a hung test child that forked its own helper (OpenMP runtimes
/// and shell stubs both do) used to outlive the timeout kill, leaking
/// threads and cores — the kill hit the child but not the grandchild. The
/// group kill must take down the whole tree.
TEST(RunProcess, TimeoutKillsWholeProcessGroup) {
  const std::string dir = temp_dir();
  const std::string gpid_file = dir + "/gpid";
  const std::string script = dir + "/forker.sh";
  write_script(script, "#!/bin/sh\n"
                       "sh -c 'echo $$ > " + gpid_file + "; exec sleep 30' &\n"
                       "echo ready\n"
                       "sleep 30\n");

  const ProcessResult r = run_process({script}, 300);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.output, "ready\n");

  const pid_t grandchild = static_cast<pid_t>(std::stol("0" + slurp(gpid_file)));
  ASSERT_GT(grandchild, 0) << "grandchild never started";
  EXPECT_TRUE(wait_until_dead(grandchild, std::chrono::seconds(3)))
      << "grandchild " << grandchild << " survived the group kill";
}

TEST(AsyncProcessPool, TimeoutKillsWholeProcessGroup) {
  const std::string dir = temp_dir();
  const std::string gpid_file = dir + "/gpid";
  const std::string script = dir + "/forker.sh";
  write_script(script, "#!/bin/sh\n"
                       "sh -c 'echo $$ > " + gpid_file + "; exec sleep 30' &\n"
                       "sleep 30\n");

  AsyncProcessPool pool(4);
  const ProcessResult r = pool.submit({{script}, 300, false}).get();
  EXPECT_TRUE(r.timed_out);

  const pid_t grandchild = static_cast<pid_t>(std::stol("0" + slurp(gpid_file)));
  ASSERT_GT(grandchild, 0) << "grandchild never started";
  EXPECT_TRUE(wait_until_dead(grandchild, std::chrono::seconds(3)))
      << "grandchild " << grandchild << " survived the group kill";
}

TEST(AsyncProcessPool, TimeoutDoesNotStallOtherChildren) {
  // One hung child must not delay the others past its own deadline.
  AsyncProcessPool pool(4);
  const auto start = Clock::now();
  auto hung = pool.submit({{"/bin/sleep", "30"}, 2'000, false});
  auto quick = pool.submit({{"/bin/echo", "ok"}, 5'000, false});
  EXPECT_EQ(quick.get().output, "ok\n");
  const auto quick_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_LT(quick_ms.count(), 1'000) << "quick child waited on the hung one";
  EXPECT_TRUE(hung.get().timed_out);
}

// --------------------------------------------------- exclusive (quiet) -----

TEST(AsyncProcessPool, ExclusiveJobsRunAlone) {
  const std::string dir = temp_dir();
  const auto interval_script = [&](const std::string& tag) {
    const std::string path = dir + "/" + tag + ".sh";
    write_script(path, "#!/bin/sh\n"
                       "s=$(date +%s%N)\n"
                       "sleep 0.12\n"
                       "e=$(date +%s%N)\n"
                       "echo \"$s $e\" > " + dir + "/" + tag + ".ivl\n");
    return path;
  };

  AsyncProcessPool pool(8);
  std::vector<std::future<ProcessResult>> futures;
  std::vector<std::string> normal_tags, exclusive_tags;
  for (int i = 0; i < 3; ++i) {
    normal_tags.push_back("n" + std::to_string(i));
    futures.push_back(
        pool.submit({{interval_script(normal_tags.back())}, 10'000, false}));
  }
  exclusive_tags.push_back("x0");
  futures.push_back(pool.submit({{interval_script("x0")}, 10'000, true}));
  for (int i = 3; i < 6; ++i) {
    normal_tags.push_back("n" + std::to_string(i));
    futures.push_back(
        pool.submit({{interval_script(normal_tags.back())}, 10'000, false}));
  }
  exclusive_tags.push_back("x1");
  futures.push_back(pool.submit({{interval_script("x1")}, 10'000, true}));
  for (auto& f : futures) EXPECT_EQ(f.get().exit_code, 0);

  std::vector<Interval> all;
  std::vector<Interval> exclusive;
  for (const auto& tag : normal_tags) {
    all.push_back(read_interval(dir + "/" + tag + ".ivl"));
  }
  for (const auto& tag : exclusive_tags) {
    exclusive.push_back(read_interval(dir + "/" + tag + ".ivl"));
    all.push_back(exclusive.back());
  }
  for (const auto& iv : all) ASSERT_GT(iv.end, iv.start);

  // Exclusive jobs overlap nothing — not each other, not normal jobs.
  for (const auto& x : exclusive) {
    int overlapping = 0;
    for (const auto& other : all) {
      if (other.start == x.start && other.end == x.end) continue;  // itself
      overlapping += overlaps(x, other) ? 1 : 0;
    }
    EXPECT_EQ(overlapping, 0);
  }
  // ... while the pool did overlap normal jobs (otherwise this test would
  // also pass on a fully serialized pool and prove nothing).
  int normal_overlaps = 0;
  for (std::size_t i = 0; i < normal_tags.size(); ++i) {
    for (std::size_t j = i + 1; j < normal_tags.size(); ++j) {
      normal_overlaps += overlaps(all[i], all[j]) ? 1 : 0;
    }
  }
  EXPECT_GT(normal_overlaps, 0) << "pool never ran two children at once";
}

// ------------------------------------------------------------- resolver ----

TEST(ResolveExecutable, MemoizedResolutionIsStable) {
  const std::string first = resolve_executable("echo");
  const std::string second = resolve_executable("echo");
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('/'), std::string::npos) << "echo not found on PATH?";
}

TEST(ResolveExecutable, PathQualifiedNamesPassThrough) {
  EXPECT_EQ(resolve_executable("/bin/echo"), "/bin/echo");
  EXPECT_EQ(resolve_executable("./relative/tool"), "./relative/tool");
}

TEST(ResolveExecutable, UnknownNamesReturnedVerbatim) {
  EXPECT_EQ(resolve_executable("definitely-not-a-real-binary-42"),
            "definitely-not-a-real-binary-42");
}

TEST(RunProcess, TimeoutEnforcedAfterChildClosesStdout) {
  // Regression: a child that closed stdout (EOF on the pipe) but kept
  // running used to slip past the deadline into an unbounded waitpid.
  const auto start = Clock::now();
  const ProcessResult r =
      run_process({"/bin/sh", "-c", "exec 1>&-; sleep 30"}, 300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed.count(), 5'000);
}

TEST(RunProcess, ShebangLessScriptFallsBackToShell) {
  const std::string dir = temp_dir();
  const std::string script = dir + "/plain.sh";
  write_script(script, "echo via-sh\n");  // no #! line: exec gives ENOEXEC
  const ProcessResult r = run_process({script}, 5'000);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "via-sh\n");
}

// ------------------------------------------------------ fault injection ----
// Every pool-side fault site must fabricate the documented "lost child"
// shape — exit 127 with empty output, the result downstream classification
// turns into a harness failure — never a fake observation.

FaultConfig pool_faults(const char* sites, double rate = 1.0) {
  FaultConfig config;
  config.enabled = true;
  config.rate = rate;
  config.sites = sites;
  return config;
}

TEST(PoolFaultInjection, SpawnSitesFabricateLostChildResults) {
  for (const char* site : {"pool_pipe", "pool_fork", "pool_exec", "pool_stall"}) {
    const ScopedFaultInjection scoped(pool_faults(site));
    AsyncProcessPool pool(4);
    const ProcessResult r =
        pool.submit({{"/bin/echo", "should-not-appear"}, 5'000, false}).get();
    EXPECT_EQ(r.exit_code, 127) << site;
    EXPECT_TRUE(r.output.empty()) << site;
    EXPECT_FALSE(r.timed_out) << site;
    const auto stats = FaultInjector::instance().site_stats(
        *fault_site_by_name(site));
    EXPECT_GE(stats.injected, 1u) << site;
  }
}

TEST(PoolFaultInjection, PollHiccupsOnlyDelayCompletion) {
  // pool_poll skips one poll() round; results must still arrive intact.
  const ScopedFaultInjection scoped(pool_faults("pool_poll", 0.5));
  AsyncProcessPool pool(4);
  std::vector<std::future<ProcessResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit({{"/bin/echo", std::to_string(i)}, 5'000, false}));
  }
  for (int i = 0; i < 8; ++i) {
    const ProcessResult r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.output, std::to_string(i) + "\n");
  }
  EXPECT_GE(FaultInjector::instance().site_stats(FaultSite::PoolPoll).checked, 1u);
}

TEST(PoolFaultInjection, ScopedInjectionDisablesOnExit) {
  {
    const ScopedFaultInjection scoped(pool_faults("pool_exec"));
    AsyncProcessPool pool(2);
    EXPECT_EQ(pool.submit({{"/bin/echo", "x"}, 5'000, false}).get().exit_code, 127);
  }
  EXPECT_FALSE(FaultInjector::instance().enabled());
  AsyncProcessPool pool(2);
  const ProcessResult r = pool.submit({{"/bin/echo", "x"}, 5'000, false}).get();
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "x\n");
}

}  // namespace
}  // namespace ompfuzz::harness
