// Tests for the test-case reducer subsystem (src/reduce/): verdict-class
// semantics, pass-level candidate validity (lexical scoping, variable
// pruning), ddmin shrinkage and verdict preservation, reduction determinism
// (bit-identical minimal program in-process and across two processes), and
// oracle caching (a store-warm re-reduction executes zero children).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "emit/codegen.hpp"
#include "harness/campaign.hpp"
#include "harness/sim_executor.hpp"
#include "harness/subprocess_executor.hpp"
#include "reduce/campaign_reduce.hpp"
#include "reduce/oracle.hpp"
#include "reduce/passes.hpp"
#include "reduce/reducer.hpp"
#include "support/result_store.hpp"
#include "support/telemetry.hpp"

namespace ompfuzz::reduce {
namespace {

using ast::BinOp;
using ast::Expr;
using ast::FpWidth;
using ast::Program;
using ast::Stmt;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

std::string temp_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/ompfuzz_reduce_" +
                    std::to_string(getpid()) + "_" + std::to_string(counter++);
  mkdir(dir.c_str(), 0755);
  return dir;
}

void write_script(const std::string& path, const std::string& content) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
  }
  ASSERT_EQ(chmod(path.c_str(), 0755), 0);
}

/// Stub "compiler" whose binary prints a fixed comp value, so two stubs with
/// different values diverge on every (program, input) — the divergence is
/// program-independent and the minimal program is the empty kernel. Both
/// stages log their pid for child counting.
std::string make_const_compiler(const std::string& dir, const std::string& name,
                                const std::string& comp_value) {
  const std::string log = dir + "/children.log";
  const std::string payload = dir + "/" + name + "_payload.sh";
  write_script(payload, "#!/bin/sh\necho run_$$ >> " + log + "\necho \"" +
                            comp_value + "\"\necho \"time_us: 2000\"\n");
  const std::string cc = dir + "/" + name + ".sh";
  write_script(cc, "#!/bin/sh\necho compile_$$ >> " + log + "\ncp " + payload +
                       " \"$2\"\nchmod +x \"$2\"\n");
  return cc;
}

int count_children(const std::string& dir) {
  std::ifstream in(dir + "/children.log");
  int n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

/// A small but structurally rich program:
///   comp += var_x;
///   t = var_x * 2.0;
///   comp += t;
///   for (i < var_n) { omp critical is omitted }  -> comp -= 1.0
///   if (var_x < 3.0) { comp *= 2.0; }
struct Fixture {
  Program prog;
  VarId comp, n, x, t, i;

  Fixture() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    n = prog.add_var({"var_n", VarKind::IntScalar, VarRole::Param, FpWidth::F64, 0});
    x = prog.add_var({"var_x", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    t = prog.add_var({"tmp_1", VarKind::FpScalar, VarRole::Temp, FpWidth::F64, 0});
    i = prog.add_var({"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
    prog.add_param(n);
    prog.add_param(x);

    auto& stmts = prog.body().stmts;
    stmts.push_back(Stmt::assign({comp, nullptr}, ast::AssignOp::AddAssign,
                                 Expr::var(x)));
    stmts.push_back(Stmt::decl(
        t, Expr::binary(BinOp::Mul, Expr::var(x), Expr::fp_const(2.0))));
    stmts.push_back(Stmt::assign({comp, nullptr}, ast::AssignOp::AddAssign,
                                 Expr::var(t)));
    ast::Block loop_body;
    loop_body.stmts.push_back(Stmt::assign(
        {comp, nullptr}, ast::AssignOp::SubAssign, Expr::fp_const(1.0)));
    stmts.push_back(Stmt::for_loop(i, Expr::var(n), std::move(loop_body),
                                   /*omp_for=*/false));
    ast::Block then_block;
    then_block.stmts.push_back(Stmt::assign(
        {comp, nullptr}, ast::AssignOp::MulAssign, Expr::fp_const(2.0)));
    ast::BoolExpr cond;
    cond.lhs = x;
    cond.op = ast::BoolOp::Lt;
    cond.rhs = Expr::fp_const(3.0);
    stmts.push_back(Stmt::if_block(std::move(cond), std::move(then_block)));
  }

  [[nodiscard]] fp::InputSet input() const {
    fp::InputSet in;
    fp::InputValue trip;
    trip.kind = fp::ParamKind::Int;
    trip.int_value = 4;
    in.values.push_back(trip);
    fp::InputValue scalar;
    scalar.kind = fp::ParamKind::Scalar;
    scalar.fp_value = 1.5;
    in.values.push_back(scalar);
    return in;
  }
};

// ------------------------------------------------------------ VerdictClass -

core::RunResult ok_run(const std::string& impl, double output) {
  core::RunResult r;
  r.impl = impl;
  r.status = core::RunStatus::Ok;
  r.output = output;
  r.time_us = 1000;
  return r;
}

TEST(VerdictClass, ClassifiesDivergenceAndFailures) {
  std::vector<core::RunResult> runs = {ok_run("a", 1.0), ok_run("b", 1.0),
                                       ok_run("c", 2.0)};
  const auto cls = core::classify_runs(runs, core::exact_tolerance());
  EXPECT_EQ(cls.per_run,
            (std::vector<core::RunClass>{core::RunClass::OkConsensus,
                                         core::RunClass::OkConsensus,
                                         core::RunClass::OkDivergent}));
  EXPECT_TRUE(cls.divergent());
  EXPECT_EQ(core::to_string(cls), "ok ok ok/div");

  runs[2] = ok_run("c", 1.0);
  EXPECT_FALSE(core::classify_runs(runs, core::exact_tolerance()).divergent());

  runs[2].status = core::RunStatus::Crash;
  const auto crash_cls = core::classify_runs(runs, core::exact_tolerance());
  EXPECT_EQ(crash_cls.per_run[2], core::RunClass::Crash);
  EXPECT_TRUE(crash_cls.divergent());
}

TEST(VerdictClass, AllFailedIsNotDifferentialEvidence) {
  std::vector<core::RunResult> runs(2);
  runs[0].status = core::RunStatus::Crash;
  runs[1].status = core::RunStatus::Hang;
  EXPECT_FALSE(core::classify_runs(runs, core::exact_tolerance()).divergent());
}

TEST(VerdictClass, NanConsensusIsNotDivergent) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<core::RunResult> runs = {ok_run("a", nan), ok_run("b", nan)};
  EXPECT_FALSE(core::classify_runs(runs, core::exact_tolerance()).divergent());
}

// ----------------------------------------------------------------- passes -

TEST(Passes, CountAndDepth) {
  const Fixture f;
  EXPECT_EQ(ast::count_stmts(f.prog.body()), 7u);
  EXPECT_EQ(max_stmt_depth(f.prog), 2u);
  EXPECT_EQ(paths_at_depth(f.prog, 1).size(), 5u);
  EXPECT_EQ(paths_at_depth(f.prog, 2).size(), 2u);
}

TEST(Passes, RemovingDeclStrandsItsUses) {
  const Fixture f;
  EXPECT_TRUE(structurally_valid(f.prog));
  // Removing the Decl of tmp_1 (index 1) leaves "comp += tmp_1" referencing
  // an undeclared local: validate() still passes (the symbol table keeps the
  // var), but the emitted C++ would not compile — structurally_valid must
  // reject it.
  Program broken = remove_paths(f.prog, {{1}});
  EXPECT_EQ(ast::count_stmts(broken.body()), 6u);
  EXPECT_NO_THROW(broken.validate());
  EXPECT_FALSE(structurally_valid(broken));
  // Removing the Decl and the use together is fine.
  EXPECT_TRUE(structurally_valid(remove_paths(f.prog, {{1}, {2}})));
}

TEST(Passes, CollapseHoistsBodies) {
  const Fixture f;
  const auto candidates = collapse_candidates(f.prog, f.input());
  ASSERT_EQ(candidates.size(), 2u);  // the for and the if
  // Collapsing the for hoists "comp -= 1.0" to the top level; the loop
  // header (and its loop-var declaration) disappears.
  EXPECT_EQ(ast::count_stmts(candidates[0].program.body()), 6u);
  EXPECT_TRUE(structurally_valid(candidates[0].program));
}

TEST(Passes, ExprCandidatesShrinkStrictly) {
  const Fixture f;
  for (const auto& candidate : expr_candidates(f.prog, f.input())) {
    // Every expression edit must shrink the well-founded measure the
    // reducer's termination argument relies on.
    std::size_t before = 0, after = 0;
    ast::walk_exprs(f.prog.body(), [&](const ast::Expr&) { ++before; });
    ast::walk_exprs(candidate.program.body(),
                    [&](const ast::Expr&) { ++after; });
    EXPECT_LE(after, before) << candidate.edit;
  }
}

TEST(Passes, PruneDropsUnusedParamAndItsInput) {
  Fixture f;
  // Make var_n unused: replace the for loop's bound with a constant.
  f.prog.body().stmts[3]->loop_bound = Expr::int_const(2);
  const auto pruned = prune_candidate(f.prog, f.input());
  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(pruned->program.params().size(), 1u);  // var_x stays
  EXPECT_EQ(pruned->input.values.size(), 1u);
  EXPECT_EQ(pruned->input.values[0].kind, fp::ParamKind::Scalar);
  EXPECT_TRUE(structurally_valid(pruned->program));
  pruned->program.validate();
  // Fingerprint changed (ids renumbered): the reduced program is a new
  // cache key, never a stale hit on the original.
  EXPECT_NE(pruned->program.fingerprint(), f.prog.fingerprint());
}

TEST(Passes, PruneKeepsFullyUsedPrograms) {
  const Fixture f;
  EXPECT_FALSE(prune_candidate(f.prog, f.input()).has_value());
}

// ---------------------------------------------------------------- reducer -

/// Two constant stubs that always disagree: every candidate preserves the
/// class, so ddmin must drive the program to the empty kernel.
TEST(Reducer, ReducesToEmptyKernelWhenDivergenceIsUnconditional) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"alpha", make_const_compiler(dir, "alpha", "7") + " {src} {bin}", ""},
      {"beta", make_const_compiler(dir, "beta", "42") + " {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir + "/work";
  opt.concurrent_runs = true;
  harness::SubprocessExecutor executor(impls, opt);

  const Fixture f;
  InterestingnessOracle oracle(executor);
  Reducer reducer(oracle);
  const ReduceResult result = reducer.reduce(f.prog, f.input());

  EXPECT_TRUE(result.reproduced);
  EXPECT_TRUE(result.verdict.divergent());
  EXPECT_EQ(result.stats.initial_statements, 7u);
  EXPECT_EQ(result.stats.final_statements, 0u);
  EXPECT_TRUE(result.program.body().empty());
  // Unused params pruned, and the input shrank with the signature.
  EXPECT_TRUE(result.program.params().empty());
  EXPECT_TRUE(result.input.values.empty());
  EXPECT_GT(result.stats.candidates_tried, 0u);
}

TEST(Reducer, WorkDirIsBoundedAfterFullReduction) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"alpha", make_const_compiler(dir, "alpha", "7") + " {src} {bin}", ""},
      {"beta", make_const_compiler(dir, "beta", "42") + " {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir + "/work";
  opt.concurrent_runs = true;
  harness::SubprocessExecutor executor(impls, opt);

  StoreConfig store_cfg;
  store_cfg.enabled = true;
  store_cfg.dir = dir + "/store";
  ResultStore store(store_cfg);

  const Fixture f;
  InterestingnessOracle oracle(executor);
  oracle.set_result_store(&store);
  Reducer reducer(oracle);
  const ReduceResult result = reducer.reduce(f.prog, f.input());
  ASSERT_TRUE(result.reproduced);
  ASSERT_GT(oracle.stats().candidates, 5u);
  EXPECT_GT(store.stats().puts, 0u);

  // Every candidate's verdict is in the result store (and the oracle memo),
  // so no per-candidate source or binary may survive the reduction — a long
  // reduction previously left one of each per candidate per implementation.
  std::vector<std::string> leftovers;
  for (const auto& entry : std::filesystem::directory_iterator(opt.work_dir)) {
    leftovers.push_back(entry.path().filename().string());
  }
  EXPECT_TRUE(leftovers.empty())
      << leftovers.size() << " artifacts leaked, e.g. " << leftovers.front();
}

TEST(Reducer, NonDivergentTripleIsReportedNotReduced) {
  const std::string dir = temp_dir();
  const std::string cc = make_const_compiler(dir, "same", "7");
  std::vector<ImplementationSpec> impls = {
      {"alpha", cc + " {src} {bin}", ""},
      {"beta", cc + " {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir + "/work";
  opt.concurrent_runs = true;
  harness::SubprocessExecutor executor(impls, opt);

  const Fixture f;
  InterestingnessOracle oracle(executor);
  Reducer reducer(oracle);
  const ReduceResult result = reducer.reduce(f.prog, f.input());
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.stats.final_statements, result.stats.initial_statements);
  EXPECT_EQ(result.program.fingerprint(), f.prog.fingerprint());
}

// -------------------------------------------------- sim-backend reduction -

/// Seed whose simulated campaign produces divergent triples (subnormal
/// inputs meet gcc's FTZ semantics); shared by the determinism tests.
CampaignConfig divergent_sim_config() {
  CampaignConfig cfg;
  cfg.num_programs = 3;
  cfg.seed = 51966;
  cfg.generator.max_loop_trip_count = 100;
  return cfg;
}

TEST(SimReduction, ShrinksSeventyPercentAndPreservesClass) {
  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);
  harness::Campaign campaign(divergent_sim_config(), executor);
  const auto result = campaign.run();
  ASSERT_FALSE(result.divergent.empty());

  const auto report = reduce_campaign(result, executor, nullptr);
  ASSERT_EQ(report.reductions.size(), result.divergent.size());
  for (const auto& row : report.reductions) {
    ASSERT_TRUE(row.reproduced) << row.program_name;
    // Acceptance bar: >= 70% of statements removed.
    EXPECT_GE(row.stats.shrink_ratio(), 0.7) << row.program_name;
    EXPECT_LT(row.reduced_statements, row.original_statements);
  }

  // The reduced program must itself reproduce the verdict class: re-derive
  // it through a fresh oracle (no caching involved).
  InterestingnessOracle oracle(executor);
  Reducer reducer(oracle);
  const auto& triple = result.divergent.front();
  const ReduceResult reduced = reducer.reduce(triple.program, triple.input);
  ASSERT_TRUE(reduced.reproduced);
  InterestingnessOracle::Request verify{&reduced.program, &reduced.input};
  const auto check = InterestingnessOracle(executor).classify({&verify, 1});
  EXPECT_TRUE(check.front().trusted);
  EXPECT_EQ(check.front().cls, reduced.verdict);
  EXPECT_EQ(check.front().cls, triple.verdict_class);
}

TEST(SimReduction, DeterministicWithinProcess) {
  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);
  harness::Campaign campaign(divergent_sim_config(), executor);
  const auto result = campaign.run();
  ASSERT_FALSE(result.divergent.empty());
  const auto& triple = result.divergent.front();

  // Two independent reductions, one serial, one with parallel candidate
  // dispatch: bit-identical minimal programs.
  OracleOptions serial_opt;
  serial_opt.threads = 1;
  InterestingnessOracle serial_oracle(executor, serial_opt);
  Reducer serial(serial_oracle);
  const ReduceResult a = serial.reduce(triple.program, triple.input);

  OracleOptions parallel_opt;
  parallel_opt.threads = 4;
  InterestingnessOracle parallel_oracle(executor, parallel_opt);
  Reducer parallel(parallel_oracle);
  const ReduceResult b = parallel.reduce(triple.program, triple.input);

  EXPECT_EQ(a.program.fingerprint(), b.program.fingerprint());
  EXPECT_EQ(emit::emit_translation_unit(a.program),
            emit::emit_translation_unit(b.program));
  EXPECT_EQ(a.input.to_string(), b.input.to_string());
}

/// Child mode of DeterministicAcrossProcesses: reduces the first divergent
/// triple of the shared campaign and writes the minimal program's source to
/// the env-provided path.
TEST(SimReduction, ChildReduce) {
  const char* out_env = std::getenv("OMPFUZZ_REDUCE_CHILD_OUT");
  if (out_env == nullptr) {
    GTEST_SKIP() << "helper: only meaningful as the re-exec'd child";
  }
  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);
  harness::Campaign campaign(divergent_sim_config(), executor);
  const auto result = campaign.run();
  ASSERT_FALSE(result.divergent.empty());
  InterestingnessOracle oracle(executor);
  Reducer reducer(oracle);
  const ReduceResult reduced =
      reducer.reduce(result.divergent.front().program,
                     result.divergent.front().input);
  {
    std::ofstream out(out_env);
    out << emit::emit_translation_unit(reduced.program) << "input "
        << reduced.input.to_string() << "\n";
  }  // closed (and flushed) before _Exit skips destructors
  std::_Exit(0);
}

TEST(SimReduction, DeterministicAcrossProcesses) {
  const std::string dir = temp_dir();
  const std::string child_out = dir + "/child_reduced.cpp";
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    setenv("OMPFUZZ_REDUCE_CHILD_OUT", child_out.c_str(), 1);
    execl("/proc/self/exe", "/proc/self/exe",
          "--gtest_filter=SimReduction.ChildReduce",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);
  harness::Campaign campaign(divergent_sim_config(), executor);
  const auto result = campaign.run();
  ASSERT_FALSE(result.divergent.empty());
  InterestingnessOracle oracle(executor);
  Reducer reducer(oracle);
  const ReduceResult reduced =
      reducer.reduce(result.divergent.front().program,
                     result.divergent.front().input);
  const std::string mine =
      emit::emit_translation_unit(reduced.program) + "input " +
      reduced.input.to_string() + "\n";

  std::ifstream in(child_out);
  ASSERT_TRUE(in) << child_out;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), mine);
}

// ------------------------------------------------------------ oracle cache -

TEST(OracleCache, WarmReductionExecutesZeroChildren) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"alpha", make_const_compiler(dir, "alpha", "7") + " {src} {bin}", ""},
      {"beta", make_const_compiler(dir, "beta", "42") + " {src} {bin}", ""},
  };
  StoreConfig store_cfg;
  store_cfg.enabled = true;
  store_cfg.dir = dir + "/store";
  ResultStore store(store_cfg);

  const Fixture f;
  std::string cold_source;
  {
    harness::SubprocessOptions opt;
    opt.work_dir = dir + "/work_cold";
    opt.concurrent_runs = true;
    harness::SubprocessExecutor executor(impls, opt);
    InterestingnessOracle oracle(executor);
    oracle.set_result_store(&store);
    Reducer reducer(oracle);
    const ReduceResult cold = reducer.reduce(f.prog, f.input());
    ASSERT_TRUE(cold.reproduced);
    cold_source = emit::emit_translation_unit(cold.program);
    EXPECT_GT(oracle.stats().executed_runs, 0u);
  }
  const int cold_children = count_children(dir);
  ASSERT_GT(cold_children, 0);

  // Fresh executor (empty binary cache), same store: the whole reduction
  // replays from cached classifications — zero new children, and the store
  // hit counter accounts for every run the cold pass executed.
  {
    harness::SubprocessOptions opt;
    opt.work_dir = dir + "/work_warm";
    opt.concurrent_runs = true;
    harness::SubprocessExecutor executor(impls, opt);
    InterestingnessOracle oracle(executor);
    oracle.set_result_store(&store);
    Reducer reducer(oracle);
    const ReduceResult warm = reducer.reduce(f.prog, f.input());
    ASSERT_TRUE(warm.reproduced);
    EXPECT_EQ(emit::emit_translation_unit(warm.program), cold_source);
    EXPECT_EQ(oracle.stats().executed_runs, 0u);
    EXPECT_GT(oracle.stats().cached_runs, 0u);
  }
  EXPECT_EQ(count_children(dir), cold_children);
  EXPECT_GT(store.stats().hits, 0u);
}

TEST(OracleCache, InProcessMemoAvoidsReexecutionWithoutStore) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"alpha", make_const_compiler(dir, "alpha", "7") + " {src} {bin}", ""},
      {"beta", make_const_compiler(dir, "beta", "42") + " {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir + "/work";
  opt.concurrent_runs = true;
  harness::SubprocessExecutor executor(impls, opt);

  // No store attached: repeats within one oracle (ddmin revisits candidates
  // constantly) must still be served from the in-process memo.
  const Fixture f;
  const fp::InputSet input = f.input();
  InterestingnessOracle oracle(executor);
  InterestingnessOracle::Request request{&f.prog, &input};
  const auto first = oracle.classify({&request, 1});
  EXPECT_EQ(oracle.stats().executed_runs, 2u);  // one per implementation
  const int children_after_first = count_children(dir);

  const auto second = oracle.classify({&request, 1});
  EXPECT_EQ(second.front().cls, first.front().cls);
  EXPECT_EQ(oracle.stats().executed_runs, 2u);  // nothing re-executed
  EXPECT_EQ(oracle.stats().cached_runs, 2u);
  EXPECT_EQ(count_children(dir), children_after_first);
}

// ---------------------------------------------------- static rejection -----

/// Fixture whose body reads `arr[i % 4]` under a 4-trip loop: safe as
/// written, but ddmin's partial index edits (binary->rhs turns the index
/// into the constant 4; folding the divisor to 0 makes `i % 0`) produce
/// exactly the unsafe candidates the oracle's value-range gate exists for.
struct ArrayFixture {
  Program prog;
  VarId comp, n, arr, i;

  ArrayFixture() {
    comp = prog.add_var(
        {"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    n = prog.add_var(
        {"var_n", VarKind::IntScalar, VarRole::Param, FpWidth::F64, 0});
    arr = prog.add_var(
        {"arr_1", VarKind::FpArray, VarRole::Param, FpWidth::F64, 4});
    i = prog.add_var(
        {"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
    prog.add_param(n);
    prog.add_param(arr);

    ast::Block loop_body;
    loop_body.stmts.push_back(Stmt::assign(
        {comp, nullptr}, ast::AssignOp::AddAssign,
        Expr::array(arr, Expr::binary(BinOp::Mod, Expr::var(i),
                                      Expr::int_const(4)))));
    prog.body().stmts.push_back(Stmt::for_loop(
        i, Expr::var(n), std::move(loop_body), /*omp_for=*/false));
  }

  [[nodiscard]] fp::InputSet input() const {
    fp::InputSet in;
    fp::InputValue trip;
    trip.kind = fp::ParamKind::Int;
    trip.int_value = 4;
    in.values.push_back(trip);
    fp::InputValue fill;
    fill.kind = fp::ParamKind::Array;
    fill.fp_value = 1.0;
    in.values.push_back(fill);
    return in;
  }

  /// The fixture with its subscript replaced by the out-of-bounds constant 4
  /// — the exact program ddmin's binary->rhs edit would propose.
  [[nodiscard]] Program oob_variant() const {
    Program p = prog.clone();
    p.body().stmts.front()->body.stmts.front()->value =
        Expr::array(arr, Expr::int_const(4));
    return p;
  }
};

TEST(OracleStaticReject, UnsafeCandidateSpawnsZeroChildren) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"alpha", make_const_compiler(dir, "alpha", "7") + " {src} {bin}", ""},
      {"beta", make_const_compiler(dir, "beta", "42") + " {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir + "/work";
  harness::SubprocessExecutor executor(impls, opt);

  const ArrayFixture f;
  const Program oob = f.oob_variant();
  const fp::InputSet input = f.input();
  const std::uint64_t rejects_before =
      telemetry::Registry::global().counter("reduce.static_rejects").value();

  InterestingnessOracle oracle(executor);
  InterestingnessOracle::Request request{&oob, &input};
  const auto verdicts = oracle.classify({&request, 1});

  // Rejected before any cache tier or dispatch: untrusted, zero children.
  EXPECT_FALSE(verdicts.front().trusted);
  EXPECT_EQ(oracle.stats().static_rejects, 1u);
  EXPECT_EQ(oracle.stats().untrusted_candidates, 1u);
  EXPECT_EQ(oracle.stats().executed_runs, 0u);
  EXPECT_EQ(oracle.stats().cached_runs, 0u);
  EXPECT_EQ(count_children(dir), 0);
  EXPECT_EQ(
      telemetry::Registry::global().counter("reduce.static_rejects").value(),
      rejects_before + 1);

  // The safe original still dispatches normally through the same oracle.
  InterestingnessOracle::Request safe{&f.prog, &input};
  const auto ok = oracle.classify({&safe, 1});
  EXPECT_TRUE(ok.front().trusted);
  EXPECT_EQ(oracle.stats().executed_runs, 2u);  // one per implementation
  EXPECT_GT(count_children(dir), 0);
}

TEST(OracleStaticReject, ToggleOnlyChangesChildCountNotClassification) {
  harness::SimExecutor executor;

  const ArrayFixture f;
  const Program oob = f.oob_variant();
  const fp::InputSet input = f.input();
  const std::vector<InterestingnessOracle::Request> requests = {
      {&f.prog, &input},
      {&oob, &input},
  };

  OracleOptions off;
  off.static_reject = false;
  InterestingnessOracle gated(executor);
  InterestingnessOracle ungated(executor, off);
  const auto with_gate = gated.classify(requests);
  const auto without_gate = ungated.classify(requests);

  // Same verdicts either way: the safe program classifies identically, and
  // the unsafe one is untrusted whether rejected statically or refused by
  // the interpreter at dispatch.
  ASSERT_EQ(with_gate.size(), without_gate.size());
  for (std::size_t k = 0; k < with_gate.size(); ++k) {
    EXPECT_EQ(with_gate[k].trusted, without_gate[k].trusted) << k;
    if (with_gate[k].trusted) {
      EXPECT_EQ(with_gate[k].cls, without_gate[k].cls) << k;
    }
  }
  EXPECT_TRUE(with_gate[0].trusted);
  EXPECT_FALSE(with_gate[1].trusted);

  // Only the child count differs: the gate saves every run the unsafe
  // candidate would have burned.
  EXPECT_EQ(gated.stats().static_rejects, 1u);
  EXPECT_EQ(ungated.stats().static_rejects, 0u);
  EXPECT_LT(gated.stats().executed_runs, ungated.stats().executed_runs);
}

// ------------------------------------------------------ campaign retention -

TEST(CampaignRetention, DivergentTriplesCarrySourceAndAst) {
  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);
  harness::Campaign campaign(divergent_sim_config(), executor);
  const auto result = campaign.run();
  ASSERT_FALSE(result.divergent.empty());
  for (const auto& triple : result.divergent) {
    EXPECT_TRUE(triple.verdict_class.divergent());
    EXPECT_FALSE(triple.source.empty());
    EXPECT_FALSE(triple.input_text.empty());
    EXPECT_EQ(triple.source, emit::emit_translation_unit(triple.program));
    EXPECT_EQ(triple.input_text, triple.input.to_string());
    // The retained triple maps back to its outcome.
    bool found = false;
    for (const auto& outcome : result.outcomes) {
      if (outcome.program_index == triple.program_index &&
          outcome.input_index == triple.input_index) {
        EXPECT_EQ(outcome.program_name, triple.program_name);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(CampaignRetention, ResumedCampaignRetainsTheSameTriples) {
  const std::string dir = temp_dir();
  harness::SimExecutorOptions opt;
  opt.num_threads = divergent_sim_config().generator.num_threads;
  harness::SimExecutor executor(opt);

  CheckpointJournal journal(dir + "/j.journal");
  harness::Campaign first(divergent_sim_config(), executor);
  first.set_checkpoint(&journal, false);
  const auto cold = first.run();
  ASSERT_FALSE(cold.divergent.empty());

  // A fully resumed run regenerates the divergent programs from seed (the
  // journal has no AST) and must retain identical triples.
  CheckpointJournal journal2(dir + "/j.journal");
  harness::Campaign resumed(divergent_sim_config(), executor);
  resumed.set_checkpoint(&journal2, true);
  const auto warm = resumed.run();
  EXPECT_EQ(resumed.resumed_programs(), divergent_sim_config().num_programs);
  ASSERT_EQ(warm.divergent.size(), cold.divergent.size());
  for (std::size_t i = 0; i < warm.divergent.size(); ++i) {
    EXPECT_EQ(warm.divergent[i].source, cold.divergent[i].source);
    EXPECT_EQ(warm.divergent[i].input_text, cold.divergent[i].input_text);
    EXPECT_EQ(warm.divergent[i].verdict_class, cold.divergent[i].verdict_class);
  }
}

}  // namespace
}  // namespace ompfuzz::reduce
