// Tests for the synthetic profiler: call-stack attribution (Figs 6/7) and
// hang thread-state reconstruction (Figs 8/9).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "profiler/callstack.hpp"
#include "profiler/thread_state.hpp"
#include "support/error.hpp"

namespace ompfuzz::prof {
namespace {

rt::TimeBreakdown sample_time(double compute, double launch, double barrier,
                              double critical) {
  rt::TimeBreakdown t;
  t.compute_ns = compute;
  t.launch_ns = launch;
  t.barrier_ns = barrier;
  t.critical_ns = critical;
  return t;
}

// ------------------------------------------------------------ stacks -------

TEST(Callstack, VendorSymbolVocabulary) {
  const auto time = sample_time(1e6, 5e5, 3e6, 0.0);
  const auto gcc = build_stack_profile(time, rt::gcc_profile(), "_test_2");
  const auto intel = build_stack_profile(time, rt::intel_profile(), "_test_2");
  const auto clang = build_stack_profile(time, rt::clang_profile(), "_test_10");

  const auto has_symbol = [](const StackProfile& p, const std::string& sym) {
    for (const auto& e : p.entries) {
      if (e.symbol.find(sym) != std::string::npos) return true;
    }
    return false;
  };
  // The frames the paper's listings show for each runtime.
  EXPECT_TRUE(has_symbol(gcc, "do_wait"));
  EXPECT_TRUE(has_symbol(gcc, "do_spin"));
  EXPECT_TRUE(has_symbol(intel, "__kmp_wait"));
  EXPECT_TRUE(has_symbol(intel, "__kmp_launch_worker"));
  EXPECT_TRUE(has_symbol(clang, "__kmp_invoke_microtask"));
  EXPECT_TRUE(has_symbol(clang, ".omp_outlined."));
}

TEST(Callstack, OverheadSharesTrackTimeBreakdown) {
  // Barrier-dominated run: the wait symbol must dominate.
  const auto time = sample_time(1e5, 1e4, 9e6, 0.0);
  const auto p = build_stack_profile(time, rt::gcc_profile(), "t");
  ASSERT_FALSE(p.entries.empty());
  double do_wait_pct = 0.0;
  double top_self = 0.0;
  for (const auto& e : p.entries) {
    top_self = std::max(top_self, e.overhead_pct);
    if (e.symbol == "do_wait") do_wait_pct = e.overhead_pct;
  }
  EXPECT_GT(do_wait_pct, 50.0);
  EXPECT_DOUBLE_EQ(do_wait_pct, top_self);  // dominant self-overhead row
}

TEST(Callstack, CriticalSymbolAppearsOnlyWithCriticalTime) {
  const auto without = build_stack_profile(sample_time(1e6, 1e5, 1e5, 0.0),
                                           rt::intel_profile(), "t");
  const auto with = build_stack_profile(sample_time(1e6, 1e5, 1e5, 5e6),
                                        rt::intel_profile(), "t");
  const auto has_lock = [](const StackProfile& p) {
    for (const auto& e : p.entries) {
      if (e.symbol.find("queuing_lock") != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_lock(without));
  EXPECT_TRUE(has_lock(with));
}

TEST(Callstack, SelfOverheadsDoNotExceed100) {
  const auto time = sample_time(2e6, 1e6, 3e6, 4e6);
  const auto p = build_stack_profile(time, rt::clang_profile(), "t");
  double self_total = 0.0;
  for (const auto& e : p.entries) {
    EXPECT_GE(e.overhead_pct, 0.0);
    self_total += e.overhead_pct;
  }
  EXPECT_LE(self_total, 101.0);  // rounding slack
}

TEST(Callstack, ChildrenModeExceeds100ByDesign) {
  // perf --children accumulates subtrees, so the column sums past 100%
  // (the paper notes this in Section V-D).
  const auto time = sample_time(2e6, 1e6, 3e6, 1e6);
  const auto p = build_stack_profile(time, rt::intel_profile(), "t");
  double children_total = 0.0;
  for (const auto& e : p.entries) children_total += e.children_pct;
  EXPECT_GT(children_total, 110.0);
}

TEST(Callstack, RenderModes) {
  const auto time = sample_time(1e6, 1e6, 1e6, 1e6);
  const auto p = build_stack_profile(time, rt::gcc_profile(), "_test_2");
  const std::string self_mode = p.render(false);
  EXPECT_NE(self_mode.find("Overhead"), std::string::npos);
  EXPECT_NE(self_mode.find("Shared Object"), std::string::npos);
  EXPECT_NE(self_mode.find("libgomp"), std::string::npos);
  EXPECT_NE(self_mode.find("%"), std::string::npos);
  const std::string children_mode = p.render(true);
  EXPECT_NE(children_mode.find("Children"), std::string::npos);
  EXPECT_NE(children_mode.find("Self"), std::string::npos);
}

TEST(Callstack, ClangMallocTrafficVisible) {
  // Clang's per-launch allocation shows libc malloc frames (Fig. 7).
  const auto time = sample_time(1e6, 8e6, 1e6, 0.0);
  const auto p = build_stack_profile(time, rt::clang_profile(), "t");
  bool saw_malloc = false;
  for (const auto& e : p.entries) {
    if (e.symbol.find("alloc") != std::string::npos) saw_malloc = true;
  }
  EXPECT_TRUE(saw_malloc);
}

// ------------------------------------------------------------ hang ---------

TEST(HangAnalysis, ThirtyTwoThreadsInThreeGroups) {
  const auto report = analyze_hang(rt::intel_profile(), 32, 0x1247,
                                   "quartz1247_tests_group_3_test_3.cpp");
  EXPECT_EQ(report.threads.size(), 32u);
  const auto sizes = report.group_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 32);
  // All three states populated for a full-width team (Fig. 9).
  for (int g = 0; g < 3; ++g) EXPECT_GT(sizes[g], 0) << "group " << g;
}

TEST(HangAnalysis, DeterministicPerSeed) {
  const auto a = analyze_hang(rt::intel_profile(), 32, 99, "t.cpp");
  const auto b = analyze_hang(rt::intel_profile(), 32, 99, "t.cpp");
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].state, b.threads[i].state);
  }
  const auto c = analyze_hang(rt::intel_profile(), 32, 100, "t.cpp");
  bool any_different = false;
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    any_different |= (a.threads[i].state != c.threads[i].state);
  }
  EXPECT_TRUE(any_different);
}

TEST(HangAnalysis, BacktraceShowsQueuingLockChain) {
  const auto report = analyze_hang(rt::intel_profile(), 8, 5, "case3.cpp");
  const std::string bt = report.render_backtrace(0);
  // The Fig. 8 frames, innermost to outermost.
  EXPECT_NE(bt.find("__kmp_acquire_queuing_lock"), std::string::npos);
  EXPECT_NE(bt.find("__kmpc_critical_with_hint"), std::string::npos);
  EXPECT_NE(bt.find(".omp_outlined."), std::string::npos);
  EXPECT_NE(bt.find("case3.cpp"), std::string::npos);
  EXPECT_NE(bt.find("SIGINT"), std::string::npos);
}

TEST(HangAnalysis, GroupRenderListsAllThreads) {
  const auto report = analyze_hang(rt::intel_profile(), 4, 6, "t.cpp");
  const std::string groups = report.render_groups();
  EXPECT_NE(groups.find("Group 1"), std::string::npos);
  EXPECT_NE(groups.find("Group 3"), std::string::npos);
  EXPECT_NE(groups.find("__kmp_wait_4"), std::string::npos);
  EXPECT_NE(groups.find("sched_yield"), std::string::npos);
}

TEST(HangAnalysis, BacktraceIndexChecked) {
  const auto report = analyze_hang(rt::intel_profile(), 4, 6, "t.cpp");
  EXPECT_THROW((void)report.render_backtrace(4), Error);
  EXPECT_THROW((void)report.render_backtrace(-1), Error);
}

TEST(HangAnalysis, StateNames) {
  EXPECT_STREQ(to_string(ThreadWaitState::WaitSpin), "__kmp_wait_4");
  EXPECT_STREQ(to_string(ThreadWaitState::TestLock), "__kmp_eq_4");
  EXPECT_STREQ(to_string(ThreadWaitState::Yielding), "sched_yield");
}

}  // namespace
}  // namespace ompfuzz::prof
