// Tests for the interpreter: arithmetic typing, control flow, OpenMP
// semantics (privatization, firstprivate, reductions, omp-for scheduling),
// FP semantic knobs, event counting, and the step budget.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interp.hpp"
#include "support/error.hpp"

namespace ompfuzz::interp {
namespace {

using ast::AssignOp;
using ast::BinOp;
using ast::Block;
using ast::Expr;
using ast::FpWidth;
using ast::LValue;
using ast::OmpClauses;
using ast::Program;
using ast::ReductionOp;
using ast::Stmt;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

/// Program builder: comp + configurable params, returning input values.
struct TestProgram {
  Program prog;
  VarId comp;
  std::vector<fp::InputValue> inputs;

  TestProgram() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
  }

  VarId add_double(const std::string& name, double v) {
    const VarId id =
        prog.add_var({name, VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    prog.add_param(id);
    fp::InputValue in;
    in.kind = fp::ParamKind::Scalar;
    in.width = fp::FpWidth::F64;
    in.fp_value = v;
    inputs.push_back(in);
    return id;
  }

  VarId add_float(const std::string& name, float v) {
    const VarId id =
        prog.add_var({name, VarKind::FpScalar, VarRole::Param, FpWidth::F32, 0});
    prog.add_param(id);
    fp::InputValue in;
    in.kind = fp::ParamKind::Scalar;
    in.width = fp::FpWidth::F32;
    in.fp_value = static_cast<double>(v);
    inputs.push_back(in);
    return id;
  }

  VarId add_int(const std::string& name, std::int64_t v) {
    const VarId id =
        prog.add_var({name, VarKind::IntScalar, VarRole::Param, FpWidth::F64, 0});
    prog.add_param(id);
    fp::InputValue in;
    in.kind = fp::ParamKind::Int;
    in.int_value = v;
    inputs.push_back(in);
    return id;
  }

  VarId add_array(const std::string& name, FpWidth w, int size, double fill) {
    const VarId id = prog.add_var({name, VarKind::FpArray, VarRole::Param, w, size});
    prog.add_param(id);
    fp::InputValue in;
    in.kind = fp::ParamKind::Array;
    in.width = w == FpWidth::F32 ? fp::FpWidth::F32 : fp::FpWidth::F64;
    in.fp_value = fill;
    inputs.push_back(in);
    return id;
  }

  VarId loop_index(const std::string& name) {
    return prog.add_var({name, VarKind::IntScalar, VarRole::LoopIndex,
                         FpWidth::F64, 0});
  }

  InterpResult run(InterpOptions opt = {}) {
    fp::InputSet set;
    set.values = inputs;
    prog.validate();
    return execute(prog, set, opt);
  }
};

// ------------------------------------------------------------ basics -------

TEST(Interp, CompStartsAtZero) {
  TestProgram t;
  const auto r = t.run();
  EXPECT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.comp, 0.0);
}

TEST(Interp, SimpleArithmetic) {
  TestProgram t;
  const VarId x = t.add_double("x", 3.0);
  const VarId y = t.add_double("y", 4.0);
  // comp += x * y + 0.5
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Add,
                   Expr::binary(BinOp::Mul, Expr::var(x), Expr::var(y)),
                   Expr::fp_const(0.5))));
  EXPECT_DOUBLE_EQ(t.run().comp, 12.5);
}

TEST(Interp, AllAssignOps) {
  TestProgram t;
  const VarId x = t.add_double("x", 2.0);
  auto& body = t.prog.body().stmts;
  body.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::Assign,
                              Expr::fp_const(10.0)));
  body.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                              Expr::var(x)));  // 12
  body.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::SubAssign,
                              Expr::fp_const(4.0)));  // 8
  body.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::MulAssign,
                              Expr::var(x)));  // 16
  body.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::DivAssign,
                              Expr::fp_const(4.0)));  // 4
  EXPECT_DOUBLE_EQ(t.run().comp, 4.0);
}

TEST(Interp, DivisionByZeroGivesInfinity) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId z = t.add_double("z", 0.0);
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Div, Expr::var(x), Expr::var(z))));
  EXPECT_TRUE(std::isinf(t.run().comp));
}

TEST(Interp, MathCallsMatchLibm) {
  TestProgram t;
  const VarId x = t.add_double("x", 0.5);
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::call(ast::MathFunc::Sin, Expr::var(x))));
  EXPECT_DOUBLE_EQ(t.run().comp, std::sin(0.5));
}

TEST(Interp, FloatOperationsRoundInFloat) {
  TestProgram t;
  const float a = 1.1f, b = 2.3f;
  const VarId va = t.add_float("a", a);
  const VarId vb = t.add_float("b", b);
  // tmp (float) = a * b; comp += tmp
  const VarId tmp = t.prog.add_var({"tmp", VarKind::FpScalar, VarRole::Temp,
                                    FpWidth::F32, 0});
  t.prog.body().stmts.push_back(
      Stmt::decl(tmp, Expr::binary(BinOp::Mul, Expr::var(va), Expr::var(vb))));
  t.prog.body().stmts.push_back(Stmt::assign(LValue{t.comp, nullptr},
                                             AssignOp::AddAssign, Expr::var(tmp)));
  // Reference: float multiply, then widen — exactly what C++ does.
  const double expected = static_cast<double>(a * b);
  EXPECT_DOUBLE_EQ(t.run().comp, expected);
}

TEST(Interp, MixedWidthPromotesToDouble) {
  TestProgram t;
  const VarId f = t.add_float("f", 0.1f);
  const VarId d = t.add_double("d", 0.2);
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Add, Expr::var(f), Expr::var(d))));
  EXPECT_DOUBLE_EQ(t.run().comp, static_cast<double>(0.1f) + 0.2);
}

TEST(Interp, CompoundFloatAssignMatchesCpp) {
  TestProgram t;
  const float a = 3.3f;
  const float b = 7.7f;
  const VarId va = t.add_float("a", a);
  const VarId vb = t.add_float("b", b);
  const VarId tmp = t.prog.add_var({"tmp", VarKind::FpScalar, VarRole::Temp,
                                    FpWidth::F32, 0});
  t.prog.body().stmts.push_back(Stmt::decl(tmp, Expr::var(va)));
  t.prog.body().stmts.push_back(
      Stmt::assign(LValue{tmp, nullptr}, AssignOp::MulAssign, Expr::var(vb)));
  t.prog.body().stmts.push_back(Stmt::assign(LValue{t.comp, nullptr},
                                             AssignOp::AddAssign, Expr::var(tmp)));
  float ref = a;
  ref *= b;  // float multiply, as the emitted C++ would do
  EXPECT_DOUBLE_EQ(t.run().comp, static_cast<double>(ref));
}

// ------------------------------------------------------------ control flow -

TEST(Interp, IfTakenAndNotTaken) {
  TestProgram t;
  const VarId x = t.add_double("x", 5.0);
  ast::BoolExpr taken;
  taken.lhs = x;
  taken.op = ast::BoolOp::Gt;
  taken.rhs = Expr::fp_const(1.0);
  Block then1;
  then1.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                     Expr::fp_const(10.0)));
  t.prog.body().stmts.push_back(Stmt::if_block(std::move(taken), std::move(then1)));

  ast::BoolExpr not_taken;
  not_taken.lhs = x;
  not_taken.op = ast::BoolOp::Lt;
  not_taken.rhs = Expr::fp_const(1.0);
  Block then2;
  then2.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                     Expr::fp_const(100.0)));
  t.prog.body().stmts.push_back(
      Stmt::if_block(std::move(not_taken), std::move(then2)));
  EXPECT_DOUBLE_EQ(t.run().comp, 10.0);
}

TEST(Interp, ForLoopWithConstantBound) {
  TestProgram t;
  const VarId i = t.loop_index("i_1");
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  t.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::int_const(7), std::move(body), false));
  const auto r = t.run();
  EXPECT_DOUBLE_EQ(r.comp, 7.0);
  EXPECT_EQ(r.events.loop_iterations, 7u);
}

TEST(Interp, ForLoopWithParamBound) {
  TestProgram t;
  const VarId n = t.add_int("n", 5);
  const VarId i = t.loop_index("i_1");
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(2.0)));
  t.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::var(n), std::move(body), false));
  EXPECT_DOUBLE_EQ(t.run().comp, 10.0);
}

TEST(Interp, LoopIndexVisibleInBody) {
  TestProgram t;
  const VarId arr = t.add_array("arr", FpWidth::F64, 4, 0.0);
  const VarId i = t.loop_index("i_1");
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{arr, Expr::var(i)}, AssignOp::Assign,
                                    Expr::fp_const(3.0)));
  t.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::int_const(4), std::move(body), false));
  // comp += arr[3]
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::array(arr, Expr::int_const(3))));
  EXPECT_DOUBLE_EQ(t.run().comp, 3.0);
}

TEST(Interp, ArrayFillAndFloatStorage) {
  TestProgram t;
  const VarId arr = t.add_array("arr", FpWidth::F32, 8, 0.1);  // fill = 0.1
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::array(arr, Expr::int_const(2))));
  // Float array holds float(0.1), widened on read.
  EXPECT_DOUBLE_EQ(t.run().comp, static_cast<double>(0.1f));
}

TEST(Interp, OutOfBoundsSubscriptThrows) {
  TestProgram t;
  const VarId arr = t.add_array("arr", FpWidth::F64, 4, 1.0);
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::array(arr, Expr::int_const(4))));
  // validate() passes (subscript bounds are a dynamic property); the
  // interpreter must catch it as a framework-level error.
  fp::InputSet set;
  set.values = t.inputs;
  EXPECT_THROW((void)execute(t.prog, set, {}), InterpError);
}

// ------------------------------------------------------------ OpenMP -------

/// Builds "parallel { preamble...; for (...) { body } }".
Stmt* add_region(TestProgram& t, OmpClauses clauses, Block preamble,
                 VarId loop_var, std::int64_t bound, Block loop_body,
                 bool omp_for) {
  Block region;
  for (auto& s : preamble.stmts) region.stmts.push_back(std::move(s));
  region.stmts.push_back(Stmt::for_loop(loop_var, Expr::int_const(bound),
                                        std::move(loop_body), omp_for));
  t.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));
  return t.prog.body().stmts.back().get();
}

TEST(Interp, ReductionSumAcrossThreads) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 4;
  // omp for over 12 iterations: each iteration adds 1 exactly once.
  add_region(t, std::move(clauses), std::move(preamble), i, 12, std::move(loop),
             /*omp_for=*/true);
  const auto r = t.run();
  EXPECT_DOUBLE_EQ(r.comp, 12.0);
  EXPECT_EQ(r.events.parallel_regions, 1u);
  EXPECT_EQ(r.events.thread_starts, 4u);
  EXPECT_EQ(r.events.reduction_combines, 4u);
}

TEST(Interp, ReductionProdUsesIdentityOne) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::MulAssign,
                                    Expr::fp_const(2.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.reduction = ReductionOp::Prod;
  clauses.num_threads = 2;
  add_region(t, std::move(clauses), std::move(preamble), i, 8, std::move(loop),
             /*omp_for=*/true);
  // comp starts 0.0: 0 * (2^8) = 0 under reduction(*: comp).
  EXPECT_DOUBLE_EQ(t.run().comp, 0.0);
}

TEST(Interp, SerialLoopInRegionRunsPerThread) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 3;
  // NOT work-shared: every thread runs all 5 iterations.
  add_region(t, std::move(clauses), std::move(preamble), i, 5, std::move(loop),
             /*omp_for=*/false);
  EXPECT_DOUBLE_EQ(t.run().comp, 15.0);
}

TEST(Interp, FirstprivateCarriesValueIn) {
  TestProgram t;
  const VarId x = t.add_double("x", 7.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr},
                                        AssignOp::AddAssign, Expr::var(x)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(0.0)));
  OmpClauses clauses;
  clauses.firstprivates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 2;
  add_region(t, std::move(clauses), std::move(preamble), i, 2, std::move(loop), true);
  // Each of 2 threads adds firstprivate x (7.0) once in the preamble.
  EXPECT_DOUBLE_EQ(t.run().comp, 14.0);
}

TEST(Interp, PrivateWritesDoNotLeakOut) {
  TestProgram t;
  const VarId x = t.add_double("x", 3.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(99.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{x, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.num_threads = 2;
  Block crit;
  crit.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(0.0)));
  loop.stmts.push_back(Stmt::omp_critical(std::move(crit)));
  add_region(t, std::move(clauses), std::move(preamble), i, 2, std::move(loop), true);
  // After the region, shared x must still be 3.0.
  t.prog.body().stmts.push_back(
      Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign, Expr::var(x)));
  EXPECT_DOUBLE_EQ(t.run().comp, 3.0);
}

TEST(Interp, ThreadIdIndexedArrayWrites) {
  TestProgram t;
  const VarId arr = t.add_array("arr", FpWidth::F64, 8, 0.0);
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{arr, Expr::thread_id()},
                                    AssignOp::Assign, Expr::fp_const(5.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.num_threads = 4;
  add_region(t, std::move(clauses), std::move(preamble), i, 4, std::move(loop), true);
  // Threads 0..3 each wrote arr[tid] = 5.
  for (int k = 0; k < 4; ++k) {
    t.prog.body().stmts.push_back(Stmt::assign(
        LValue{t.comp, nullptr}, AssignOp::AddAssign,
        Expr::array(arr, Expr::int_const(k))));
  }
  EXPECT_DOUBLE_EQ(t.run().comp, 20.0);
}

TEST(Interp, OmpForPartitionsIterations) {
  TestProgram t;
  const VarId arr = t.add_array("arr", FpWidth::F64, 10, 0.0);
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{arr, Expr::var(i)}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.num_threads = 3;
  add_region(t, std::move(clauses), std::move(preamble), i, 10, std::move(loop), true);
  // Work-shared: every element written exactly once.
  for (int k = 0; k < 10; ++k) {
    t.prog.body().stmts.push_back(Stmt::assign(
        LValue{t.comp, nullptr}, AssignOp::AddAssign,
        Expr::array(arr, Expr::int_const(k))));
  }
  EXPECT_DOUBLE_EQ(t.run().comp, 10.0);
}

TEST(Interp, NumThreadsOverride) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 8;
  add_region(t, std::move(clauses), std::move(preamble), i, 4, std::move(loop),
             /*omp_for=*/false);
  InterpOptions opt;
  opt.num_threads_override = 2;
  EXPECT_DOUBLE_EQ(t.run(opt).comp, 8.0);  // 2 threads x 4 iterations
}

TEST(Interp, CriticalEventsCounted) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block crit;
  crit.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  Block loop;
  loop.stmts.push_back(Stmt::omp_critical(std::move(crit)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.num_threads = 2;
  add_region(t, std::move(clauses), std::move(preamble), i, 6, std::move(loop), true);
  const auto r = t.run();
  EXPECT_DOUBLE_EQ(r.comp, 6.0);
  EXPECT_EQ(r.events.critical_entries, 6u);
  EXPECT_EQ(r.events.critical_stmts, 6u);
}

// ------------------------------------------------------------ FP semantics -

TEST(Interp, FlushSubnormalsChangesComparisonAgainstZero) {
  TestProgram t;
  const VarId x = t.add_double("x", 1e-310);  // subnormal input
  ast::BoolExpr guard;
  guard.lhs = x;
  guard.op = ast::BoolOp::Ne;
  guard.rhs = Expr::fp_const(0.0);
  Block then;
  then.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  t.prog.body().stmts.push_back(Stmt::if_block(std::move(guard), std::move(then)));

  EXPECT_DOUBLE_EQ(t.run().comp, 1.0);  // strict IEEE: subnormal != 0

  InterpOptions ftz;
  ftz.fp.flush_subnormals = true;
  EXPECT_DOUBLE_EQ(t.run(ftz).comp, 0.0);  // DAZ: flushed to zero at load
}

TEST(Interp, FlushAffectsOperationResults) {
  TestProgram t;
  const VarId x = t.add_double("x", 1e-300);
  // comp += x * 1e-100 (a subnormal result ~1e-400 -> 0 under FTZ... the
  // value underflows to subnormal 0? 1e-400 is below min subnormal, both give
  // 0; use 1e-20 so the product 1e-320 is subnormal).
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Mul, Expr::var(x), Expr::fp_const(1e-20))));
  const double strict = t.run().comp;
  EXPECT_GT(strict, 0.0);
  InterpOptions ftz;
  ftz.fp.flush_subnormals = true;
  EXPECT_DOUBLE_EQ(t.run(ftz).comp, 0.0);
}

TEST(Interp, SubnormalOpsCountedOnlyWithoutFlush) {
  TestProgram t;
  const VarId x = t.add_double("x", 1e-310);
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Mul, Expr::var(x), Expr::fp_const(0.5))));
  EXPECT_GT(t.run().events.subnormal_fp_ops, 0u);
  InterpOptions ftz;
  ftz.fp.flush_subnormals = true;
  EXPECT_EQ(t.run(ftz).events.subnormal_fp_ops, 0u);
}

TEST(Interp, FmaContractionChangesRounding) {
  TestProgram t;
  const double a = 1.0 + 1e-8, b = 1.0 - 1e-8, c = -1.0;
  const VarId va = t.add_double("a", a);
  const VarId vb = t.add_double("b", b);
  const VarId vc = t.add_double("c", c);
  // comp += a * b + c : fma gives the exact -1e-16, separate rounding differs.
  t.prog.body().stmts.push_back(Stmt::assign(
      LValue{t.comp, nullptr}, AssignOp::AddAssign,
      Expr::binary(BinOp::Add,
                   Expr::binary(BinOp::Mul, Expr::var(va), Expr::var(vb)),
                   Expr::var(vc))));
  const double separate = t.run().comp;
  InterpOptions fma;
  fma.fp.contract_fma = true;
  const double contracted = t.run(fma).comp;
  EXPECT_DOUBLE_EQ(separate, a * b + c);
  EXPECT_DOUBLE_EQ(contracted, std::fma(a, b, c));
  EXPECT_NE(separate, contracted);
}

TEST(Interp, ReassociatedReductionDiffersFromSequential) {
  TestProgram t;
  const VarId x = t.add_double("x", 0.1);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr},
                                        AssignOp::AddAssign, Expr::var(x)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(0.0)));
  OmpClauses clauses;
  clauses.firstprivates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 7;  // odd team: tree and fold orders differ
  add_region(t, std::move(clauses), std::move(preamble), i, 1, std::move(loop),
             false);
  const double sequential = t.run().comp;
  InterpOptions tree;
  tree.fp.reassociate_reductions = true;
  const double reassociated = t.run(tree).comp;
  // 7 x 0.1 summed in different orders: one may differ in the last bit; at
  // minimum both must be within a few ulps of 0.7.
  EXPECT_NEAR(sequential, 0.7, 1e-15);
  EXPECT_NEAR(reassociated, 0.7, 1e-15);
}

// ------------------------------------------------------------ budget -------

TEST(Interp, StepBudgetStopsExecution) {
  TestProgram t;
  const VarId i = t.loop_index("i_1");
  Block body;
  body.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  t.prog.body().stmts.push_back(
      Stmt::for_loop(i, Expr::int_const(1000000), std::move(body), false));
  InterpOptions opt;
  opt.max_steps = 1000;
  const auto r = t.run(opt);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.over_budget);
  EXPECT_LE(r.steps, 1002u);
}

TEST(Interp, BudgetInsideRegionLeavesValidState) {
  TestProgram t;
  const VarId x = t.add_double("x", 1.0);
  const VarId i = t.loop_index("i_1");
  Block preamble;
  preamble.stmts.push_back(
      Stmt::assign(LValue{x, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop;
  loop.stmts.push_back(Stmt::assign(LValue{t.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::fp_const(1.0)));
  OmpClauses clauses;
  clauses.privates = {x};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 4;
  add_region(t, std::move(clauses), std::move(preamble), i, 1000000,
             std::move(loop), false);
  InterpOptions opt;
  opt.max_steps = 500;
  const auto r = t.run(opt);
  EXPECT_TRUE(r.over_budget);
  EXPECT_FALSE(std::isnan(r.comp));  // reads global comp, not a dangling frame
}

// ------------------------------------------------------------ scheduling ---

TEST(StaticChunk, CoversRangeExactlyOnce) {
  for (int n : {0, 1, 7, 10, 32, 100}) {
    for (int threads : {1, 2, 3, 8, 32}) {
      std::vector<int> hits(static_cast<std::size_t>(std::max(n, 1)), 0);
      for (int tid = 0; tid < threads; ++tid) {
        const auto r = static_chunk(n, threads, tid);
        for (auto k = r.begin; k < r.end; ++k) hits[static_cast<std::size_t>(k)]++;
      }
      for (int k = 0; k < n; ++k) {
        EXPECT_EQ(hits[static_cast<std::size_t>(k)], 1)
            << "n=" << n << " T=" << threads << " k=" << k;
      }
    }
  }
}

TEST(StaticChunk, BalancedWithinOne) {
  const auto size = [](IterRange r) { return r.end - r.begin; };
  for (int tid = 0; tid < 8; ++tid) {
    const auto len = size(static_chunk(30, 8, tid));
    EXPECT_TRUE(len == 3 || len == 4);
  }
}

TEST(StaticChunk, DegenerateInputs) {
  EXPECT_EQ(static_chunk(10, 4, -1).end, 0);
  EXPECT_EQ(static_chunk(10, 4, 4).end, 0);
  EXPECT_EQ(static_chunk(-5, 4, 0).end, 0);
  EXPECT_EQ(static_chunk(10, 0, 0).end, 0);
}

}  // namespace
}  // namespace ompfuzz::interp
