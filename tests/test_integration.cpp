// Integration tests across the whole pipeline, including the real-compiler
// path: emitted programs must compile with the system g++ -fopenmp, run, and
// produce output bit-identical to the in-process interpreter (single-thread
// teams, where OpenMP leaves no ordering freedom).
#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/differ.hpp"
#include "core/generator.hpp"
#include "emit/codegen.hpp"
#include "fp/input_gen.hpp"
#include "harness/campaign.hpp"
#include "harness/sim_executor.hpp"
#include "harness/subprocess_executor.hpp"
#include "interp/interp.hpp"
#include "support/string_utils.hpp"

namespace ompfuzz {
namespace {

bool have_gxx() {
  return std::system("g++ --version > /dev/null 2>&1") == 0;
}

std::string temp_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/ompfuzz_it_" +
                    std::to_string(getpid()) + "_" + std::to_string(counter++);
  (void)std::system(("mkdir -p " + dir).c_str());
  return dir;
}

// --------------------------------------------------- run_process helper ----

TEST(RunProcess, CapturesStdout) {
  const auto r = harness::run_process({"/bin/echo", "hello"}, 5000);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "hello\n");
  EXPECT_FALSE(r.timed_out);
}

TEST(RunProcess, ReportsExitCode) {
  const auto r = harness::run_process({"/bin/sh", "-c", "exit 3"}, 5000);
  EXPECT_EQ(r.exit_code, 3);
}

TEST(RunProcess, TimesOutAndKills) {
  const auto r = harness::run_process({"/bin/sleep", "30"}, 300);
  EXPECT_TRUE(r.timed_out);
}

TEST(RunProcess, MissingBinaryIsFailure) {
  const auto r = harness::run_process({"/nonexistent/binary"}, 2000);
  EXPECT_NE(r.exit_code, 0);
}

// --------------------------------------------------- real compiler path ----

/// Compiles `code` with g++ -fopenmp and runs it with `argv`; returns stdout.
std::string compile_and_run(const std::string& dir, const std::string& code,
                            const std::vector<std::string>& args) {
  const std::string src = dir + "/t.cpp";
  const std::string bin = dir + "/t.bin";
  {
    std::ofstream out(src);
    out << code;
  }
  const auto compile = harness::run_process(
      {"g++", "-std=c++17", "-fopenmp", "-O2", src, "-o", bin}, 60000);
  EXPECT_EQ(compile.exit_code, 0) << "emitted program failed to compile";
  std::vector<std::string> argv = {bin};
  for (const auto& a : args) argv.push_back(a);
  const auto run = harness::run_process(argv, 30000);
  EXPECT_EQ(run.exit_code, 0);
  return run.output;
}

TEST(RealCompile, EmittedProgramsCompileAndRun) {
  if (!have_gxx()) GTEST_SKIP() << "no g++ available";
  GeneratorConfig cfg;
  cfg.num_threads = 2;
  cfg.max_loop_trip_count = 20;
  const core::ProgramGenerator gen(cfg);
  const std::string dir = temp_dir();

  const auto prog = gen.generate("it_compile", 4242);
  fp::InputGenOptions in_opt;
  in_opt.max_trip_count = 20;
  const fp::InputGenerator input_gen(in_opt);
  RandomEngine rng(7);
  const auto input = input_gen.generate(prog.signature(), rng);

  const std::string out =
      compile_and_run(dir, emit::emit_translation_unit(prog), input.to_argv());
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[1], "time_us: "));
}

// Property: on single-thread teams, the interpreter and the real compiled
// binary agree bit for bit on the printed comp value.
class InterpVsBinary : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpVsBinary, OutputsMatchBitwise) {
  if (!have_gxx()) GTEST_SKIP() << "no g++ available";
  GeneratorConfig cfg;
  cfg.num_threads = 1;  // no scheduling freedom: results must match exactly
  cfg.max_loop_trip_count = 15;
  const core::ProgramGenerator gen(cfg);
  const std::string dir = temp_dir();

  const auto prog = gen.generate("it_eq", GetParam());
  fp::InputGenOptions in_opt;
  in_opt.max_trip_count = 15;
  const fp::InputGenerator input_gen(in_opt);
  RandomEngine rng(GetParam() + 1);
  const auto input = input_gen.generate(prog.signature(), rng);

  const auto interp_result = interp::execute(prog, input, {});
  ASSERT_TRUE(interp_result.ok);

  const std::string out =
      compile_and_run(dir, emit::emit_translation_unit(prog), input.to_argv());
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 1u);
  const double binary_comp = std::strtod(lines[0].c_str(), nullptr);

  if (std::isnan(interp_result.comp)) {
    EXPECT_TRUE(std::isnan(binary_comp)) << "binary printed " << lines[0];
  } else {
    EXPECT_EQ(binary_comp, interp_result.comp)
        << "binary=" << lines[0]
        << " interp=" << format_double(interp_result.comp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpVsBinary,
                         ::testing::Values(11, 22, 33, 44, 55));

// --------------------------------------------------- subprocess executor ---

TEST(SubprocessExecutorTest, RunsDifferentialCampaignWithOptLevels) {
  if (!have_gxx()) GTEST_SKIP() << "no g++ available";
  const std::string dir = temp_dir();
  // Optimization levels as implementation proxies (see DESIGN.md).
  std::vector<ImplementationSpec> impls = {
      {"gxx-O0", "g++ -std=c++17 -fopenmp -O0 {src} -o {bin}", ""},
      {"gxx-O2", "g++ -std=c++17 -fopenmp -O2 {src} -o {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir;
  opt.run_timeout_ms = 30000;
  harness::SubprocessExecutor exec(std::move(impls), opt);

  CampaignConfig cfg;
  cfg.num_programs = 2;
  cfg.inputs_per_program = 1;
  cfg.generator.num_threads = 2;
  cfg.generator.max_loop_trip_count = 10;
  cfg.min_time_us = 0;
  harness::Campaign campaign(cfg, exec);
  const auto result = campaign.run();
  EXPECT_EQ(result.total_runs, 4);
  int ok_runs = 0;
  for (const auto& o : result.outcomes) {
    for (const auto& r : o.runs) {
      ok_runs += (r.status == core::RunStatus::Ok);
    }
  }
  EXPECT_EQ(ok_runs, 4) << "all real-compiler runs should terminate OK";
  // Both optimization levels of the same compiler must agree numerically
  // (num_threads(2), but our generated tests are race-free and -O2 keeps
  // IEEE semantics for everything except reduction order).
  for (const auto& o : result.outcomes) {
    if (o.runs[0].status == core::RunStatus::Ok &&
        o.runs[1].status == core::RunStatus::Ok &&
        !std::isnan(o.runs[0].output) && !std::isnan(o.runs[1].output)) {
      const auto cmp = core::compare_outputs(o.runs[0].output, o.runs[1].output);
      EXPECT_TRUE(cmp.equivalent)
          << o.program_name << ": " << o.runs[0].output << " vs "
          << o.runs[1].output;
    }
  }
}

TEST(SubprocessExecutorTest, CompileFailureBecomesCrash) {
  const std::string dir = temp_dir();
  std::vector<ImplementationSpec> impls = {
      {"broken", "/bin/false {src} {bin}", ""},
  };
  harness::SubprocessOptions opt;
  opt.work_dir = dir;
  harness::SubprocessExecutor exec(std::move(impls), opt);

  CampaignConfig cfg;
  cfg.num_programs = 1;
  cfg.inputs_per_program = 1;
  cfg.generator.num_threads = 2;
  cfg.generator.max_loop_trip_count = 5;
  harness::Campaign campaign(cfg, exec);
  const auto result = campaign.run();
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].runs[0].status, core::RunStatus::Crash);
}

// --------------------------------------------------- determinism sweep -----

TEST(EndToEnd, SimCampaignFullyDeterministicAcrossProcesses) {
  // Not literally across processes here, but across independent executor and
  // campaign instances, which exercises all the state the process boundary
  // would reset.
  CampaignConfig cfg;
  cfg.num_programs = 5;
  cfg.inputs_per_program = 2;
  cfg.generator.num_threads = 8;
  cfg.generator.max_loop_trip_count = 30;
  harness::SimExecutorOptions opt;
  opt.num_threads = 8;

  std::vector<std::string> fingerprints;
  for (int round = 0; round < 2; ++round) {
    harness::SimExecutor exec(opt);
    harness::Campaign campaign(cfg, exec);
    const auto result = campaign.run();
    std::string fp;
    for (const auto& o : result.outcomes) {
      for (std::size_t r = 0; r < o.runs.size(); ++r) {
        fp += core::to_string(o.runs[r].status);
        fp += format_double(o.runs[r].time_us);
        fp += core::to_string(o.verdict.per_run[r]);
      }
    }
    fingerprints.push_back(std::move(fp));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
}  // namespace ompfuzz
