// Tests for the OpenMP loop-schedule calculators.
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/sched.hpp"
#include "support/error.hpp"

namespace ompfuzz::rt {
namespace {

struct SchedCase {
  ScheduleKind kind;
  std::int64_t n;
  int threads;
  std::int64_t chunk;
};

class ScheduleCoverage : public ::testing::TestWithParam<SchedCase> {};

TEST_P(ScheduleCoverage, EveryIterationAssignedExactlyOnce) {
  const auto p = GetParam();
  const auto chunks = compute_schedule(p.kind, p.n, p.threads, p.chunk);
  std::vector<int> hits(static_cast<std::size_t>(p.n), 0);
  for (const auto& c : chunks) {
    EXPECT_GE(c.thread, 0);
    EXPECT_LT(c.thread, p.threads);
    EXPECT_LT(c.begin, c.end);
    for (auto i = c.begin; i < c.end; ++i) hits[static_cast<std::size_t>(i)]++;
  }
  for (std::int64_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "iteration " << i;
  }
}

TEST_P(ScheduleCoverage, ChunksAreOrderedAndDisjoint) {
  const auto p = GetParam();
  const auto chunks = compute_schedule(p.kind, p.n, p.threads, p.chunk);
  for (std::size_t k = 1; k < chunks.size(); ++k) {
    EXPECT_EQ(chunks[k].begin, chunks[k - 1].end);
  }
  if (!chunks.empty()) {
    EXPECT_EQ(chunks.front().begin, 0);
    EXPECT_EQ(chunks.back().end, p.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleCoverage,
    ::testing::Values(SchedCase{ScheduleKind::Static, 100, 8, 1},
                      SchedCase{ScheduleKind::Static, 7, 32, 1},
                      SchedCase{ScheduleKind::Static, 32, 32, 1},
                      SchedCase{ScheduleKind::StaticChunked, 100, 8, 7},
                      SchedCase{ScheduleKind::StaticChunked, 10, 3, 100},
                      SchedCase{ScheduleKind::Dynamic, 100, 8, 4},
                      SchedCase{ScheduleKind::Dynamic, 5, 8, 1},
                      SchedCase{ScheduleKind::Guided, 100, 8, 1},
                      SchedCase{ScheduleKind::Guided, 1000, 16, 4}));

TEST(Schedule, StaticBalancedWithinOne) {
  const auto chunks = compute_schedule(ScheduleKind::Static, 30, 8);
  std::vector<std::int64_t> per_thread(8, 0);
  for (const auto& c : chunks) per_thread[static_cast<std::size_t>(c.thread)] += c.size();
  const auto [lo, hi] = std::minmax_element(per_thread.begin(), per_thread.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(Schedule, StaticChunkedDealsRoundRobin) {
  const auto chunks = compute_schedule(ScheduleKind::StaticChunked, 12, 3, 2);
  ASSERT_EQ(chunks.size(), 6u);
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    EXPECT_EQ(chunks[k].thread, static_cast<int>(k % 3));
    EXPECT_EQ(chunks[k].size(), 2);
  }
}

TEST(Schedule, GuidedChunksDecrease) {
  const auto chunks = compute_schedule(ScheduleKind::Guided, 1000, 4, 1);
  for (std::size_t k = 1; k < chunks.size(); ++k) {
    EXPECT_LE(chunks[k].size(), chunks[k - 1].size());
  }
  // First claim is remaining/threads = 250.
  EXPECT_EQ(chunks.front().size(), 250);
}

TEST(Schedule, GuidedRespectsMinimumChunk) {
  const auto chunks = compute_schedule(ScheduleKind::Guided, 100, 4, 10);
  for (std::size_t k = 0; k + 1 < chunks.size(); ++k) {
    EXPECT_GE(chunks[k].size(), 10);
  }
}

TEST(Schedule, EmptyAndDegenerate) {
  EXPECT_TRUE(compute_schedule(ScheduleKind::Static, 0, 4).empty());
  EXPECT_TRUE(compute_schedule(ScheduleKind::Dynamic, -3, 4).empty());
  EXPECT_THROW((void)compute_schedule(ScheduleKind::Static, 10, 0), Error);
  EXPECT_THROW((void)compute_schedule(ScheduleKind::Dynamic, 10, 4, 0), Error);
}

TEST(Schedule, SingleThreadGetsEverything) {
  const auto chunks = compute_schedule(ScheduleKind::Static, 50, 1);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size(), 50);
  EXPECT_EQ(chunks[0].thread, 0);
}

TEST(Schedule, ClaimCountsMatchOverheadModel) {
  // Static: one claim per participating thread; dynamic: one per chunk.
  EXPECT_EQ(claim_count(ScheduleKind::Static, 100, 8), 8u);
  EXPECT_EQ(claim_count(ScheduleKind::Static, 3, 8), 3u);
  EXPECT_EQ(claim_count(ScheduleKind::Dynamic, 100, 8, 4), 25u);
  EXPECT_EQ(claim_count(ScheduleKind::Dynamic, 100, 8, 1), 100u);
  EXPECT_EQ(claim_count(ScheduleKind::Static, 0, 8), 0u);
  // Guided claims far fewer than dynamic chunk=1.
  EXPECT_LT(claim_count(ScheduleKind::Guided, 1000, 8, 1),
            claim_count(ScheduleKind::Dynamic, 1000, 8, 1) / 4);
}

TEST(Schedule, ToStringCoverage) {
  EXPECT_STREQ(to_string(ScheduleKind::Static), "static");
  EXPECT_STREQ(to_string(ScheduleKind::Guided), "guided");
}

}  // namespace
}  // namespace ompfuzz::rt
