// Tests for C++ code emission: literal fidelity, precedence-preserving
// parenthesization, OpenMP pragma forms, and whole-unit structure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/generator.hpp"
#include "emit/codegen.hpp"

namespace ompfuzz::emit {
namespace {

using ast::AssignOp;
using ast::BinOp;
using ast::Block;
using ast::Expr;
using ast::FpWidth;
using ast::LValue;
using ast::OmpClauses;
using ast::Program;
using ast::ReductionOp;
using ast::Stmt;
using ast::VarId;
using ast::VarKind;
using ast::VarRole;

struct Fixture {
  Program prog;
  VarId comp, a, b, c, arr, i;

  Fixture() {
    comp = prog.add_var({"comp", VarKind::FpScalar, VarRole::Comp, FpWidth::F64, 0});
    prog.set_comp(comp);
    a = prog.add_var({"a", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    b = prog.add_var({"b", VarKind::FpScalar, VarRole::Param, FpWidth::F64, 0});
    c = prog.add_var({"c", VarKind::FpScalar, VarRole::Param, FpWidth::F32, 0});
    arr = prog.add_var({"arr", VarKind::FpArray, VarRole::Param, FpWidth::F64, 8});
    i = prog.add_var({"i_1", VarKind::IntScalar, VarRole::LoopIndex, FpWidth::F64, 0});
    prog.add_param(a);
    prog.add_param(b);
    prog.add_param(c);
    prog.add_param(arr);
  }

  std::string expr_text(const ast::ExprPtr& e) { return emit_expr(prog, *e); }
};

// ------------------------------------------------------------ literals -----

TEST(FpLiteral, AlwaysParsesAsDouble) {
  EXPECT_EQ(emit_fp_literal(2.0), "2.0");
  EXPECT_EQ(emit_fp_literal(-1.0), "-1.0");
  EXPECT_EQ(emit_fp_literal(0.5), "0.5");
  EXPECT_EQ(emit_fp_literal(-0.0), "-0.0");
}

TEST(FpLiteral, RoundTripsFullPrecision) {
  for (double v : {1.23e+4, -1.3929e-2, 3.141592653589793, 1e300, 5e-324}) {
    // strtod, not std::stod: stod throws out_of_range on subnormal results.
    EXPECT_EQ(std::strtod(emit_fp_literal(v).c_str(), nullptr), v);
  }
}

TEST(FpLiteral, NonFiniteEncodedAsExpressions) {
  EXPECT_EQ(emit_fp_literal(HUGE_VAL), "(1.0/0.0)");
  EXPECT_EQ(emit_fp_literal(-HUGE_VAL), "(-1.0/0.0)");
  EXPECT_EQ(emit_fp_literal(std::nan("")), "(0.0/0.0)");
}

// ------------------------------------------------------------ precedence ---

TEST(ExprEmit, LeftLeaningChainNeedsNoParens) {
  Fixture f;
  // ((a + b) + c) reads back identically without parentheses.
  auto e = Expr::binary(BinOp::Add,
                        Expr::binary(BinOp::Add, Expr::var(f.a), Expr::var(f.b)),
                        Expr::var(f.c));
  EXPECT_EQ(f.expr_text(e), "a + b + c");
}

TEST(ExprEmit, LowerPrecedenceChildOfMulIsParenthesized) {
  Fixture f;
  // (a + b) * c must keep its grouping.
  auto e = Expr::binary(BinOp::Mul,
                        Expr::binary(BinOp::Add, Expr::var(f.a), Expr::var(f.b)),
                        Expr::var(f.c));
  EXPECT_EQ(f.expr_text(e), "(a + b) * c");
}

TEST(ExprEmit, RightChildSamePrecedenceIsParenthesized) {
  Fixture f;
  // a - (b - c): left-assoc '-' would reassociate without parens.
  auto e = Expr::binary(BinOp::Sub, Expr::var(f.a),
                        Expr::binary(BinOp::Sub, Expr::var(f.b), Expr::var(f.c)));
  EXPECT_EQ(f.expr_text(e), "a - (b - c)");
}

TEST(ExprEmit, DivisionRightChildParenthesized) {
  Fixture f;
  auto e = Expr::binary(BinOp::Div, Expr::var(f.a),
                        Expr::binary(BinOp::Mul, Expr::var(f.b), Expr::var(f.c)));
  EXPECT_EQ(f.expr_text(e), "a / (b * c)");
}

TEST(ExprEmit, ExplicitParensPreserved) {
  Fixture f;
  auto e = Expr::binary(BinOp::Add, Expr::var(f.a), Expr::var(f.b),
                        /*parenthesized=*/true);
  EXPECT_EQ(f.expr_text(e), "(a + b)");
}

TEST(ExprEmit, ArraySubscriptWithMod) {
  Fixture f;
  auto e = Expr::array(
      f.arr, Expr::binary(BinOp::Mod, Expr::var(f.i), Expr::int_const(8)));
  EXPECT_EQ(f.expr_text(e), "arr[i_1 % 8]");
}

TEST(ExprEmit, ThreadIdCall) {
  Fixture f;
  auto e = Expr::array(f.arr, Expr::thread_id());
  EXPECT_EQ(f.expr_text(e), "arr[omp_get_thread_num()]");
}

TEST(ExprEmit, MathCall) {
  Fixture f;
  auto e = Expr::call(ast::MathFunc::Sqrt,
                      Expr::binary(BinOp::Add, Expr::var(f.a), Expr::var(f.b)));
  EXPECT_EQ(f.expr_text(e), "sqrt(a + b)");
}

// ------------------------------------------------------------ statements ---

TEST(UnitEmit, ContainsComputeAndMain) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(LValue{f.comp, nullptr},
                                             AssignOp::AddAssign, Expr::var(f.a)));
  const std::string code = emit_translation_unit(f.prog);
  EXPECT_NE(code.find("void compute(double* comp_result, double a, double b, "
                      "float c, double* arr)"),
            std::string::npos);
  EXPECT_NE(code.find("double comp = 0.0;"), std::string::npos);
  EXPECT_NE(code.find("comp += a;"), std::string::npos);
  EXPECT_NE(code.find("*comp_result = comp;"), std::string::npos);
  EXPECT_NE(code.find("int main(int argc, char** argv)"), std::string::npos);
  EXPECT_NE(code.find("std::chrono"), std::string::npos);
  EXPECT_NE(code.find("time_us"), std::string::npos);
}

TEST(UnitEmit, ArrayAllocationAndFill) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(LValue{f.comp, nullptr},
                                             AssignOp::AddAssign, Expr::var(f.a)));
  const std::string code = emit_translation_unit(f.prog);
  EXPECT_NE(code.find("double* arr = (double*)std::malloc(sizeof(double) * 8);"),
            std::string::npos);
  EXPECT_NE(code.find("arr[_i] = arr_fill;"), std::string::npos);
  EXPECT_NE(code.find("std::free(arr);"), std::string::npos);
}

TEST(UnitEmit, NoMainWhenDisabled) {
  Fixture f;
  f.prog.body().stmts.push_back(Stmt::assign(LValue{f.comp, nullptr},
                                             AssignOp::AddAssign, Expr::var(f.a)));
  EmitOptions opt;
  opt.include_main = false;
  const std::string code = emit_translation_unit(f.prog, opt);
  EXPECT_EQ(code.find("int main"), std::string::npos);
}

TEST(UnitEmit, ParallelPragmaWithAllClauses) {
  Fixture f;
  Block region;
  region.stmts.push_back(
      Stmt::assign(LValue{f.a, nullptr}, AssignOp::Assign, Expr::fp_const(0.0)));
  Block loop_body;
  loop_body.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr},
                                         AssignOp::AddAssign, Expr::var(f.a)));
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop_body), true));
  OmpClauses clauses;
  clauses.privates = {f.a};
  clauses.firstprivates = {f.b};
  clauses.reduction = ReductionOp::Sum;
  clauses.num_threads = 36;
  f.prog.body().stmts.push_back(
      Stmt::omp_parallel(std::move(clauses), std::move(region)));

  const std::string code = emit_translation_unit(f.prog);
  EXPECT_NE(code.find("#pragma omp parallel default(shared) private(a) "
                      "firstprivate(b) reduction(+: comp) num_threads(36)"),
            std::string::npos);
  EXPECT_NE(code.find("#pragma omp for"), std::string::npos);
  EXPECT_NE(code.find("for (int i_1 = 0; i_1 < 4; ++i_1)"), std::string::npos);
}

TEST(UnitEmit, EmptyClauseListsAreOmitted) {
  Fixture f;
  Block region;
  region.stmts.push_back(
      Stmt::assign(LValue{f.arr, Expr::thread_id()}, AssignOp::Assign,
                   Expr::fp_const(1.0)));
  Block loop_body;
  loop_body.stmts.push_back(Stmt::assign(LValue{f.arr, Expr::thread_id()},
                                         AssignOp::Assign, Expr::fp_const(2.0)));
  region.stmts.push_back(
      Stmt::for_loop(f.i, Expr::int_const(4), std::move(loop_body), false));
  f.prog.body().stmts.push_back(Stmt::omp_parallel(OmpClauses{}, std::move(region)));
  const std::string code = emit_translation_unit(f.prog);
  EXPECT_EQ(code.find("private()"), std::string::npos);
  EXPECT_EQ(code.find("firstprivate()"), std::string::npos);
}

TEST(UnitEmit, CriticalPragma) {
  Fixture f;
  Block crit;
  crit.stmts.push_back(Stmt::assign(LValue{f.comp, nullptr}, AssignOp::AddAssign,
                                    Expr::var(f.a)));
  f.prog.body().stmts.push_back(Stmt::omp_critical(std::move(crit)));
  const std::string code = emit_translation_unit(f.prog);
  EXPECT_NE(code.find("#pragma omp critical"), std::string::npos);
}

TEST(UnitEmit, FloatDeclUsesFloatKeyword) {
  Fixture f;
  const VarId t = f.prog.add_var({"tmp", VarKind::FpScalar, VarRole::Temp,
                                  FpWidth::F32, 0});
  f.prog.body().stmts.push_back(Stmt::decl(t, Expr::var(f.c)));
  const std::string code = emit_translation_unit(f.prog);
  EXPECT_NE(code.find("float tmp = c;"), std::string::npos);
}

// Golden stability: the emitted text of a seeded generated program must not
// change silently (fingerprint + hash of the emitted text both pinned).
TEST(UnitEmit, GeneratedProgramEmissionIsStable) {
  GeneratorConfig cfg;
  cfg.num_threads = 4;
  cfg.max_loop_trip_count = 20;
  const core::ProgramGenerator gen(cfg);
  const auto p1 = gen.generate("golden", 20240611);
  const auto p2 = gen.generate("golden", 20240611);
  EXPECT_EQ(emit_translation_unit(p1), emit_translation_unit(p2));
}

}  // namespace
}  // namespace ompfuzz::emit
