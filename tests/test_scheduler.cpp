// Tests for the multi-backend shard scheduler: every unit runs exactly once
// under any batch/steal/thread setting, merged CampaignResults are
// bit-identical across backend splits, batch sizes, and steal schedules,
// work-stealing actually moves work off a skewed batch (wall-clock bound +
// stolen-unit count), and the v3 checkpoint journal re-pins sub-shards to
// their owning backend on resume.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/report.hpp"
#include "harness/scheduler.hpp"
#include "harness/sim_executor.hpp"
#include "harness/subprocess_executor.hpp"
#include "runtime/impl_profile.hpp"
#include "support/config.hpp"
#include "support/error.hpp"
#include "support/result_store.hpp"

namespace ompfuzz::harness {
namespace {

std::string temp_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/ompfuzz_sched_" +
                    std::to_string(getpid()) + "_" + std::to_string(counter++);
  mkdir(dir.c_str(), 0755);
  return dir;
}

CampaignConfig sim_config(int programs, int threads) {
  CampaignConfig cfg;
  cfg.num_programs = programs;
  cfg.inputs_per_program = 2;
  cfg.generator.max_loop_trip_count = 50;
  cfg.min_time_us = 0;
  cfg.seed = 51966;
  cfg.threads = threads;
  return cfg;
}

SchedulerConfig sched_config(int batch_size, bool steal) {
  SchedulerConfig s;
  s.batch_size = batch_size;
  s.steal = steal;
  return s;
}

/// The three vendor profiles in canonical order; slices of this list build
/// backend splits whose concatenated implementation order matches the
/// single-backend baseline.
std::vector<rt::OmpImplProfile> profile_slice(std::size_t from, std::size_t to) {
  const std::vector<rt::OmpImplProfile> all = {
      rt::gcc_profile(), rt::clang_profile(), rt::intel_profile()};
  return {all.begin() + static_cast<std::ptrdiff_t>(from),
          all.begin() + static_cast<std::ptrdiff_t>(to)};
}

// ------------------------------------------------------- raw scheduler ----

TEST(ShardScheduler, EveryUnitRunsExactlyOnce) {
  for (const int batch_size : {1, 4, 16}) {
    for (const bool steal : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const ShardScheduler scheduler(2, sched_config(batch_size, steal),
                                       threads);
        std::mutex mutex;
        std::set<std::pair<int, std::size_t>> seen;
        std::atomic<int> calls{0};
        const std::vector<std::vector<int>> programs = {
            {0, 1, 2, 3, 4, 5, 6}, {0, 2, 4, 6}};
        const auto stats = scheduler.run(programs, [&](const ShardUnit& unit) {
          calls.fetch_add(1);
          const std::lock_guard<std::mutex> lock(mutex);
          EXPECT_TRUE(seen.insert({unit.program_index, unit.backend}).second)
              << "unit ran twice";
        });
        EXPECT_EQ(calls.load(), 11);
        EXPECT_EQ(seen.size(), 11u);
        EXPECT_EQ(stats.units, 11u);
        ASSERT_EQ(stats.units_per_backend.size(), 2u);
        EXPECT_EQ(stats.units_per_backend[0], 7u);
        EXPECT_EQ(stats.units_per_backend[1], 4u);
        const auto expected_batches =
            static_cast<std::uint64_t>((7 + batch_size - 1) / batch_size +
                                       (4 + batch_size - 1) / batch_size);
        EXPECT_EQ(stats.batches, expected_batches);
        if (!steal || threads <= 1) {
          EXPECT_EQ(stats.stolen_units, 0u);
        }
      }
    }
  }
}

TEST(ShardScheduler, PropagatesRunUnitExceptions) {
  const ShardScheduler scheduler(1, sched_config(2, true), 4);
  const std::vector<std::vector<int>> programs = {{0, 1, 2, 3, 4, 5}};
  std::atomic<int> calls{0};
  EXPECT_THROW(scheduler.run(programs,
                             [&](const ShardUnit& unit) {
                               calls.fetch_add(1);
                               if (unit.program_index == 3) {
                                 throw Error("unit failure");
                               }
                             }),
               Error);
  // Remaining units still ran (parallel_for semantics).
  EXPECT_EQ(calls.load(), 6);
}

// ------------------------------------------- bit-identical merged result ---

TEST(SchedulerCampaign, BitIdenticalAcrossBatchSizesAndSteal) {
  SimExecutorOptions opt;
  opt.num_threads = 4;

  SimExecutor baseline_exec(opt);
  Campaign baseline(sim_config(18, 1), baseline_exec);
  const std::string expected = to_json(baseline.run());

  for (const int batch_size : {1, 4, 16}) {
    for (const bool steal : {false, true}) {
      for (const int threads : {1, 4}) {
        SimExecutor exec(opt);
        Campaign campaign(sim_config(18, threads),
                          {{&exec, "default"}},
                          sched_config(batch_size, steal));
        EXPECT_EQ(to_json(campaign.run()), expected)
            << "batch_size=" << batch_size << " steal=" << steal
            << " threads=" << threads;
      }
    }
  }
}

TEST(SchedulerCampaign, BitIdenticalAcrossBackendSplits) {
  SimExecutorOptions opt;
  opt.num_threads = 4;

  SimExecutor baseline_exec(profile_slice(0, 3), opt);
  Campaign baseline(sim_config(12, 1), {{&baseline_exec, "all"}});
  const std::string expected = to_json(baseline.run());

  {
    // {gcc} | {clang, intel}
    SimExecutor a(profile_slice(0, 1), opt);
    SimExecutor b(profile_slice(1, 3), opt);
    Campaign campaign(sim_config(12, 4), {{&a, "left"}, {&b, "right"}},
                      sched_config(4, true));
    EXPECT_EQ(to_json(campaign.run()), expected);
  }
  {
    // {gcc} | {clang} | {intel}
    SimExecutor a(profile_slice(0, 1), opt);
    SimExecutor b(profile_slice(1, 2), opt);
    SimExecutor c(profile_slice(2, 3), opt);
    Campaign campaign(sim_config(12, 4),
                      {{&a, "b0"}, {&b, "b1"}, {&c, "b2"}},
                      sched_config(1, false));
    EXPECT_EQ(to_json(campaign.run()), expected);
  }
}

TEST(SchedulerCampaign, RejectsDuplicateImplsAndAnonymousBackends) {
  SimExecutorOptions opt;
  SimExecutor a(profile_slice(0, 2), opt);
  SimExecutor b(profile_slice(1, 3), opt);  // clang appears in both
  EXPECT_THROW(Campaign(sim_config(2, 1), {{&a, "a"}, {&b, "b"}}), Error);

  SimExecutor c(profile_slice(0, 1), opt);
  EXPECT_THROW(Campaign(sim_config(2, 1), {{&c, ""}}), Error);
  SimExecutor d(profile_slice(1, 3), opt);
  EXPECT_THROW(Campaign(sim_config(2, 1), {{&c, "same"}, {&d, "same"}}), Error);
}

// ------------------------------------------------- skewed-cost stealing ----

/// Deterministic sleeping executor: program "test_0" costs `heavy_ms` per
/// run, every other program `light_ms` — the 50x-skew shape of a hang-heavy
/// shard. Results are a pure function of (program, input, impl): fixed
/// self-reported time, output derived from the test seed, so campaigns over
/// it are bit-identical however units are scheduled.
class SleepExecutor final : public Executor {
 public:
  SleepExecutor(int heavy_ms, int light_ms)
      : heavy_ms_(heavy_ms), light_ms_(light_ms) {}

  [[nodiscard]] core::RunResult run(const TestCase& test,
                                    std::size_t input_index,
                                    const std::string& impl_name) override {
    const bool heavy = test.program.name() == "test_0";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(heavy ? heavy_ms_ : light_ms_));
    core::RunResult result;
    result.impl = impl_name;
    result.status = core::RunStatus::Ok;
    result.time_us = 2000.0;
    result.output = static_cast<double>((test.seed >> 8) % 1000) +
                    static_cast<double>(input_index);
    return result;
  }

  [[nodiscard]] std::vector<std::string> implementations() const override {
    return {"stub"};
  }
  [[nodiscard]] bool thread_safe() const noexcept override { return true; }

 private:
  int heavy_ms_;
  int light_ms_;
};

TEST(SchedulerSteal, MovesWorkOffSkewedBatchesAndPreservesResults) {
  // 40 programs, one 50x shard, a single batch, 4 workers. Without stealing
  // the worker that pops the batch runs all 40 units serially (the sum of
  // every sleep); with stealing the three idle workers drain the light units
  // while the owner sits in the heavy one, so wall-clock collapses towards
  // the heavy unit's cost.
  constexpr int kPrograms = 40;
  constexpr int kLightMs = 4;
  constexpr int kHeavyMs = 50 * kLightMs;
  CampaignConfig cfg = sim_config(kPrograms, 4);
  cfg.inputs_per_program = 1;

  const auto timed_run = [&](bool steal, SchedulerStats* stats_out) {
    SleepExecutor exec(kHeavyMs, kLightMs);
    Campaign campaign(cfg, {{&exec, "sleepy"}},
                      sched_config(kPrograms, steal));
    const auto start = std::chrono::steady_clock::now();
    const CampaignResult result = campaign.run();
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (stats_out != nullptr) *stats_out = campaign.scheduler_stats();
    return std::make_pair(to_json(result), wall);
  };

  SchedulerStats steal_stats;
  const auto [json_off, wall_off] = timed_run(false, nullptr);
  const auto [json_on, wall_on] = timed_run(true, &steal_stats);

  EXPECT_EQ(json_on, json_off) << "steal schedule changed the merged result";
  EXPECT_GT(steal_stats.stolen_units, 0u) << "no work was stolen";
  // Serial lower bound without stealing: the sum of all sleeps (~356 ms).
  // With stealing the bound is ~one heavy unit (~200 ms); 0.75 leaves CI
  // scheduling noise plenty of headroom while still proving movement.
  EXPECT_LT(wall_on, wall_off * 3 / 4)
      << "stealing did not shorten the skewed campaign: " << wall_on << "ms vs "
      << wall_off << "ms";
}

// ------------------------------------------------ journal v3 re-pinning ----

/// Forwards to an inner executor, counting batch dispatches — a resumed
/// campaign that restored every sub-shard must dispatch nothing.
class CountingExecutor final : public Executor {
 public:
  CountingExecutor(Executor& inner, std::atomic<int>& batches)
      : inner_(inner), batches_(batches) {}

  [[nodiscard]] core::RunResult run(const TestCase& test,
                                    std::size_t input_index,
                                    const std::string& impl_name) override {
    batches_.fetch_add(1);
    return inner_.run(test, input_index, impl_name);
  }
  [[nodiscard]] std::vector<core::RunResult> run_batch(
      const TestCase& test, const std::vector<std::size_t>& input_indices,
      const std::vector<std::string>& impls) override {
    batches_.fetch_add(1);
    return inner_.run_batch(test, input_indices, impls);
  }
  [[nodiscard]] std::vector<std::string> implementations() const override {
    return inner_.implementations();
  }
  [[nodiscard]] std::string impl_identity(
      const std::string& impl_name) const override {
    return inner_.impl_identity(impl_name);
  }
  [[nodiscard]] bool thread_safe() const noexcept override {
    return inner_.thread_safe();
  }

 private:
  Executor& inner_;
  std::atomic<int>& batches_;
};

TEST(SchedulerJournal, MultiBackendResumeRepinsEveryBackend) {
  const std::string path = temp_dir() + "/j.journal";
  SimExecutorOptions opt;
  opt.num_threads = 4;
  const CampaignConfig cfg = sim_config(6, 2);
  const SchedulerConfig sched = sched_config(2, true);

  std::string cold_json;
  {
    SimExecutor a(profile_slice(0, 1), opt);
    SimExecutor b(profile_slice(1, 3), opt);
    CheckpointJournal journal(path);
    Campaign campaign(cfg, {{&a, "left"}, {&b, "right"}}, sched);
    campaign.set_checkpoint(&journal, true);
    cold_json = to_json(campaign.run());
    EXPECT_EQ(campaign.resumed_programs(), 0);
  }
  {
    // Same split: every sub-shard restores, zero dispatches.
    SimExecutor a(profile_slice(0, 1), opt);
    SimExecutor b(profile_slice(1, 3), opt);
    std::atomic<int> dispatches{0};
    CountingExecutor ca(a, dispatches);
    CountingExecutor cb(b, dispatches);
    CheckpointJournal journal(path);
    Campaign campaign(cfg, {{&ca, "left"}, {&cb, "right"}}, sched);
    campaign.set_checkpoint(&journal, true);
    EXPECT_EQ(to_json(campaign.run()), cold_json);
    EXPECT_EQ(campaign.resumed_programs(), cfg.num_programs);
    EXPECT_EQ(dispatches.load(), 0)
        << "restored campaign dispatched to an executor";
  }
  {
    // Different split, same implementations: a different checkpoint key —
    // sub-shard ownership moved, so nothing may restore.
    SimExecutor all(profile_slice(0, 3), opt);
    CheckpointJournal journal(path);
    Campaign campaign(cfg, {{&all, "all"}}, sched);
    campaign.set_checkpoint(&journal, true);
    EXPECT_EQ(to_json(campaign.run()), cold_json)
        << "the merged result itself is split-invariant";
    EXPECT_EQ(campaign.resumed_programs(), 0);
  }
}

TEST(SchedulerJournal, GrownCampaignResumesItsPrefix) {
  const std::string path = temp_dir() + "/j.journal";
  SimExecutorOptions opt;
  opt.num_threads = 4;
  const SchedulerConfig sched = sched_config(3, true);

  {
    SimExecutor a(profile_slice(0, 2), opt);
    SimExecutor b(profile_slice(2, 3), opt);
    CheckpointJournal journal(path);
    Campaign campaign(sim_config(3, 2), {{&a, "left"}, {&b, "right"}}, sched);
    campaign.set_checkpoint(&journal, true);
    (void)campaign.run();
  }
  std::string grown_json;
  {
    SimExecutor a(profile_slice(0, 2), opt);
    SimExecutor b(profile_slice(2, 3), opt);
    CheckpointJournal journal(path);
    Campaign campaign(sim_config(6, 2), {{&a, "left"}, {&b, "right"}}, sched);
    campaign.set_checkpoint(&journal, true);
    grown_json = to_json(campaign.run());
    EXPECT_EQ(campaign.resumed_programs(), 3);
  }
  // The grown, partially resumed campaign matches a cold serial run.
  SimExecutor a(profile_slice(0, 2), opt);
  SimExecutor b(profile_slice(2, 3), opt);
  Campaign cold(sim_config(6, 1), {{&a, "left"}, {&b, "right"}});
  EXPECT_EQ(grown_json, to_json(cold.run()));
}

// ------------------------------------------------------ mixed backends ----

void write_script(const std::string& path, const std::string& content) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
  }
  ASSERT_EQ(chmod(path.c_str(), 0755), 0);
}

TEST(SchedulerCampaign, SimAndSubprocessBackendsMergeIntoOneResult) {
  const std::string dir = temp_dir();
  const std::string payload = dir + "/payload.sh";
  write_script(payload, "#!/bin/sh\necho 42\necho \"time_us: 2000\"\n");
  const std::string cc = dir + "/cc.sh";
  write_script(cc, "#!/bin/sh\ncp " + payload + " \"$2\"\nchmod +x \"$2\"\n");

  SimExecutorOptions opt;
  opt.num_threads = 4;
  SimExecutor sim(profile_slice(0, 3), opt);
  std::vector<ImplementationSpec> impls = {{"stubcc", cc + " {src} {bin}", ""}};
  SubprocessOptions sub_opt;
  sub_opt.work_dir = dir + "/work";
  sub_opt.concurrent_runs = true;
  SubprocessExecutor sub(impls, sub_opt);

  CampaignConfig cfg = sim_config(4, 2);
  Campaign campaign(cfg, {{&sim, "sim"}, {&sub, "cc"}}, sched_config(2, true));
  const CampaignResult result = campaign.run();

  const std::vector<std::string> expected_names = {"gcc", "clang", "intel",
                                                   "stubcc"};
  EXPECT_EQ(result.impl_names, expected_names);
  EXPECT_EQ(result.total_runs,
            cfg.num_programs * cfg.inputs_per_program * 4);
  ASSERT_TRUE(result.per_impl.contains("stubcc"));
  for (const auto& outcome : result.outcomes) {
    ASSERT_EQ(outcome.runs.size(), 4u);
    EXPECT_EQ(outcome.runs[3].impl, "stubcc");
    EXPECT_EQ(outcome.runs[3].status, core::RunStatus::Ok);
    EXPECT_EQ(outcome.runs[3].output, 42.0);
  }
}

}  // namespace
}  // namespace ompfuzz::harness
